"""Tests for the fast sweep engine (fan-out, caching, fast-forward)."""

import dataclasses

import pytest

from repro.experiments.cache import SimCache
from repro.experiments.engine import Engine, registered_kernels
from repro.experiments.figures import sweep
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled

PAIRS = [(16, True), (16, False), (64, True), (64, False)]


def _workload(name="engine-w"):
    return StencilWorkload(
        name, IterationSpace.from_extents([8, 8, 1024]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


@pytest.fixture(scope="module")
def machine():
    return pentium_cluster()


@pytest.fixture(scope="module")
def serial_results(machine):
    w = _workload()
    return [run_tiled(w, v, machine, blocking=blocking)
            for v, blocking in PAIRS]


def _assert_identical(results, reference):
    assert len(results) == len(reference)
    for got, ref in zip(results, reference):
        assert got.completion_time == ref.completion_time  # bit-identical
        assert got.messages_sent == ref.messages_sent
        assert got.v == ref.v
        assert got.blocking == ref.blocking
        assert got.grain == ref.grain


class TestBitIdentical:
    def test_in_process_matches_serial(self, machine, serial_results):
        engine = Engine(jobs=1)
        _assert_identical(
            engine.run_batch(_workload(), machine, PAIRS), serial_results
        )

    def test_parallel_pool_matches_serial(self, machine, serial_results):
        engine = Engine(jobs=2)
        _assert_identical(
            engine.run_batch(_workload(), machine, PAIRS), serial_results
        )

    def test_run_tiled_drop_in(self, machine, serial_results):
        engine = Engine(jobs=1)
        got = engine.run_tiled(_workload(), 16, machine, blocking=True)
        ref = serial_results[0]
        assert got.completion_time == ref.completion_time
        assert got.messages_sent == ref.messages_sent

    def test_sweep_through_engine_matches_serial(self, machine):
        w = _workload()
        heights = [16, 64, 256]
        serial = sweep(w, machine, heights)
        fast = sweep(w, machine, heights, engine=Engine(jobs=2))
        for a, b in zip(serial.points, fast.points):
            assert a.t_overlap_sim == b.t_overlap_sim
            assert a.t_nonoverlap_sim == b.t_nonoverlap_sim
            assert a.grain == b.grain

    def test_unregistered_kernel_falls_back_in_process(
        self, machine, serial_results
    ):
        kernel = dataclasses.replace(sqrt_kernel_3d(), name="not-registered")
        assert kernel.name not in registered_kernels()
        w = dataclasses.replace(_workload(), kernel=kernel)
        engine = Engine(jobs=2)
        _assert_identical(engine.run_batch(w, machine, PAIRS), serial_results)


class TestCacheIntegration:
    def test_second_batch_served_from_cache(self, tmp_path, machine,
                                            serial_results):
        engine = Engine(jobs=1, cache=SimCache(tmp_path))
        first = engine.run_batch(_workload(), machine, PAIRS)
        assert engine.cache.stats.misses == len(PAIRS)
        second = engine.run_batch(_workload(), machine, PAIRS)
        assert engine.cache.stats.hits == len(PAIRS)
        _assert_identical(first, serial_results)
        _assert_identical(second, serial_results)

    def test_cache_shared_across_engines(self, tmp_path, machine,
                                         serial_results):
        Engine(jobs=1, cache=SimCache(tmp_path)).run_batch(
            _workload(), machine, PAIRS
        )
        warm = Engine(jobs=1, cache=SimCache(tmp_path))
        _assert_identical(
            warm.run_batch(_workload(), machine, PAIRS), serial_results
        )
        assert warm.cache.stats.hits == len(PAIRS)
        assert warm.cache.stats.misses == 0

    def test_fastforward_results_keyed_separately(self, tmp_path, machine):
        w = StencilWorkload(
            "deep", IterationSpace.from_extents([8, 8, 8192]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        pairs = [(16, True)]
        plain = Engine(jobs=1, cache=SimCache(tmp_path))
        fast = Engine(jobs=1, cache=SimCache(tmp_path), fastforward=True)
        a = plain.run_batch(w, machine, pairs)[0]
        b = fast.run_batch(w, machine, pairs)[0]
        # Both simulated (no cross-served entries despite the shared dir):
        assert plain.cache.stats.misses == 1
        assert fast.cache.stats.misses == 1
        assert abs(a.completion_time - b.completion_time) < 1e-9 * a.completion_time


class TestFastForwardEngine:
    def test_shallow_runs_unaffected(self, machine, serial_results):
        # Every PAIRS run is too shallow for fast-forward: results stay
        # bit-identical even with it enabled.
        engine = Engine(jobs=1, fastforward=True)
        _assert_identical(
            engine.run_batch(_workload(), machine, PAIRS), serial_results
        )

    def test_deep_run_accelerated_and_accurate(self, machine):
        w = StencilWorkload(
            "deep", IterationSpace.from_extents([8, 8, 8192]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        ref = run_tiled(w, 16, machine, blocking=True)
        got = Engine(jobs=1, fastforward=True).run_tiled(
            w, 16, machine, blocking=True
        )
        rel = abs(got.completion_time - ref.completion_time) / ref.completion_time
        assert rel < 1e-9

    def test_validate_mode_guards_extrapolation(self, machine):
        w = StencilWorkload(
            "deep", IterationSpace.from_extents([8, 8, 8192]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        ref = run_tiled(w, 16, machine, blocking=True)
        engine = Engine(jobs=1, fastforward=True, validate=True,
                        validate_max_tiles=1024)
        got = engine.run_tiled(w, 16, machine, blocking=True)
        # Validation re-simulates and falls back on mismatch, so the
        # result is within the validation tolerance by construction.
        rel = abs(got.completion_time - ref.completion_time) / ref.completion_time
        assert rel <= engine.validate_rtol


class TestArguments:
    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            Engine(jobs=0)

    def test_default_jobs_positive(self):
        assert Engine().jobs >= 1

    def test_registered_kernels_contains_seed_kernels(self):
        assert "sqrt3d" in registered_kernels()
