"""Tests for the fast sweep engine (fan-out, caching, fast-forward)."""

import dataclasses

import pytest

from repro.experiments.cache import SimCache
from repro.experiments.engine import Engine, registered_kernels
from repro.experiments.figures import sweep
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled

PAIRS = [(16, True), (16, False), (64, True), (64, False)]


def _workload(name="engine-w"):
    return StencilWorkload(
        name, IterationSpace.from_extents([8, 8, 1024]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


@pytest.fixture(scope="module")
def machine():
    return pentium_cluster()


@pytest.fixture(scope="module")
def serial_results(machine):
    w = _workload()
    return [run_tiled(w, v, machine, blocking=blocking)
            for v, blocking in PAIRS]


def _assert_identical(results, reference):
    assert len(results) == len(reference)
    for got, ref in zip(results, reference):
        assert got.completion_time == ref.completion_time  # bit-identical
        assert got.messages_sent == ref.messages_sent
        assert got.v == ref.v
        assert got.blocking == ref.blocking
        assert got.grain == ref.grain


class TestBitIdentical:
    def test_in_process_matches_serial(self, machine, serial_results):
        engine = Engine(jobs=1)
        _assert_identical(
            engine.run_batch(_workload(), machine, PAIRS), serial_results
        )

    def test_parallel_pool_matches_serial(self, machine, serial_results):
        engine = Engine(jobs=2)
        _assert_identical(
            engine.run_batch(_workload(), machine, PAIRS), serial_results
        )

    def test_run_tiled_drop_in(self, machine, serial_results):
        engine = Engine(jobs=1)
        got = engine.run_tiled(_workload(), 16, machine, blocking=True)
        ref = serial_results[0]
        assert got.completion_time == ref.completion_time
        assert got.messages_sent == ref.messages_sent

    def test_sweep_through_engine_matches_serial(self, machine):
        w = _workload()
        heights = [16, 64, 256]
        serial = sweep(w, machine, heights)
        fast = sweep(w, machine, heights, engine=Engine(jobs=2))
        for a, b in zip(serial.points, fast.points):
            assert a.t_overlap_sim == b.t_overlap_sim
            assert a.t_nonoverlap_sim == b.t_nonoverlap_sim
            assert a.grain == b.grain

    def test_unregistered_kernel_falls_back_in_process(
        self, machine, serial_results
    ):
        kernel = dataclasses.replace(sqrt_kernel_3d(), name="not-registered")
        assert kernel.name not in registered_kernels()
        w = dataclasses.replace(_workload(), kernel=kernel)
        engine = Engine(jobs=2)
        _assert_identical(engine.run_batch(w, machine, PAIRS), serial_results)


class TestCacheIntegration:
    def test_second_batch_served_from_cache(self, tmp_path, machine,
                                            serial_results):
        engine = Engine(jobs=1, cache=SimCache(tmp_path))
        first = engine.run_batch(_workload(), machine, PAIRS)
        assert engine.cache.stats.misses == len(PAIRS)
        second = engine.run_batch(_workload(), machine, PAIRS)
        assert engine.cache.stats.hits == len(PAIRS)
        _assert_identical(first, serial_results)
        _assert_identical(second, serial_results)

    def test_cache_shared_across_engines(self, tmp_path, machine,
                                         serial_results):
        Engine(jobs=1, cache=SimCache(tmp_path)).run_batch(
            _workload(), machine, PAIRS
        )
        warm = Engine(jobs=1, cache=SimCache(tmp_path))
        _assert_identical(
            warm.run_batch(_workload(), machine, PAIRS), serial_results
        )
        assert warm.cache.stats.hits == len(PAIRS)
        assert warm.cache.stats.misses == 0

    def test_fastforward_results_keyed_separately(self, tmp_path, machine):
        w = StencilWorkload(
            "deep", IterationSpace.from_extents([8, 8, 8192]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        pairs = [(16, True)]
        plain = Engine(jobs=1, cache=SimCache(tmp_path))
        fast = Engine(jobs=1, cache=SimCache(tmp_path), fastforward=True)
        a = plain.run_batch(w, machine, pairs)[0]
        b = fast.run_batch(w, machine, pairs)[0]
        # Both simulated (no cross-served entries despite the shared dir):
        assert plain.cache.stats.misses == 1
        assert fast.cache.stats.misses == 1
        assert abs(a.completion_time - b.completion_time) < 1e-9 * a.completion_time


class TestFastForwardEngine:
    def test_shallow_runs_unaffected(self, machine, serial_results):
        # Every PAIRS run is too shallow for fast-forward: results stay
        # bit-identical even with it enabled.
        engine = Engine(jobs=1, fastforward=True)
        _assert_identical(
            engine.run_batch(_workload(), machine, PAIRS), serial_results
        )

    def test_deep_run_accelerated_and_accurate(self, machine):
        w = StencilWorkload(
            "deep", IterationSpace.from_extents([8, 8, 8192]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        ref = run_tiled(w, 16, machine, blocking=True)
        got = Engine(jobs=1, fastforward=True).run_tiled(
            w, 16, machine, blocking=True
        )
        rel = abs(got.completion_time - ref.completion_time) / ref.completion_time
        assert rel < 1e-9

    def test_validate_mode_guards_extrapolation(self, machine):
        w = StencilWorkload(
            "deep", IterationSpace.from_extents([8, 8, 8192]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        ref = run_tiled(w, 16, machine, blocking=True)
        engine = Engine(jobs=1, fastforward=True, validate=True,
                        validate_max_tiles=1024)
        got = engine.run_tiled(w, 16, machine, blocking=True)
        # Validation re-simulates and falls back on mismatch, so the
        # result is within the validation tolerance by construction.
        rel = abs(got.completion_time - ref.completion_time) / ref.completion_time
        assert rel <= engine.validate_rtol


class TestArguments:
    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            Engine(jobs=0)

    def test_default_jobs_positive(self):
        assert Engine().jobs >= 1

    def test_registered_kernels_contains_seed_kernels(self):
        assert "sqrt3d" in registered_kernels()


class TestResumableBatches:
    """Journaled campaigns: kill a sweep, resume, lose nothing."""

    def test_outcomes_report_sources(self, machine, tmp_path):
        from repro.experiments.journal import RunJournal

        w = _workload("resume-w")
        with RunJournal(tmp_path / "j.jsonl") as journal:
            engine = Engine(jobs=1, journal=journal)
            first = engine.run_batch_outcomes(w, machine, PAIRS)
            assert [r.source for r in first] == ["sim"] * len(PAIRS)
            assert all(r.ok for r in first)
            again = engine.run_batch_outcomes(w, machine, PAIRS)
            assert [r.source for r in again] == ["journal"] * len(PAIRS)
        for a, b in zip(first, again):
            assert a.digest == b.digest
            assert a.result.completion_time == b.result.completion_time

    def test_resume_does_no_redundant_simulation(self, machine, tmp_path,
                                                 serial_results):
        """A sweep killed halfway and restarted with the same journal
        re-simulates only the missing runs — and the merged results are
        bit-identical to an undisturbed run."""
        from repro.experiments.journal import RunJournal

        w = _workload()
        path = tmp_path / "campaign.jsonl"
        survivors = PAIRS[: len(PAIRS) // 2]
        with RunJournal(path) as journal:
            Engine(jobs=1, journal=journal).run_batch(w, machine, survivors)

        with RunJournal(path) as journal:  # the restart
            assert journal.stats.loaded == len(survivors)
            engine = Engine(jobs=1, journal=journal)
            reports = engine.run_batch_outcomes(w, machine, PAIRS)
            assert [r.source for r in reports] == (
                ["journal"] * len(survivors)
                + ["sim"] * (len(PAIRS) - len(survivors))
            )
            assert journal.stats.served == len(survivors)
        _assert_identical([r.result for r in reports], serial_results)

    def test_cache_hits_are_backfilled_into_journal(self, machine, tmp_path):
        from repro.experiments.journal import RunJournal

        w = _workload("backfill-w")
        cache = SimCache(tmp_path / "cache")
        Engine(jobs=1, cache=cache).run_batch(w, machine, PAIRS)
        with RunJournal(tmp_path / "j.jsonl") as journal:
            engine = Engine(jobs=1, cache=cache, journal=journal)
            reports = engine.run_batch_outcomes(w, machine, PAIRS)
            assert [r.source for r in reports] == ["cache"] * len(PAIRS)
            assert journal.stats.recorded == len(PAIRS)


class TestSupervisedEngine:
    """The supervised pool is the default and stays bit-identical."""

    def test_supervised_pool_matches_serial(self, machine, serial_results):
        engine = Engine(jobs=2)
        results = engine.run_batch(_workload(), machine, PAIRS)
        _assert_identical(results, serial_results)
        assert engine.supervisor_stats.completed == len(PAIRS)
        assert engine.supervisor_stats.respawns == 0

    def test_unsupervised_pool_matches_serial(self, machine, serial_results):
        engine = Engine(jobs=2, supervised=False)
        results = engine.run_batch(_workload(), machine, PAIRS)
        _assert_identical(results, serial_results)

    @pytest.mark.resilience
    def test_worker_kills_recovered_bit_identical(self, machine,
                                                  serial_results):
        """Seeded worker kills mid-batch: every casualty is respawned
        and retried, and the results match the undisturbed run."""
        from repro.experiments.cache import key_digest, run_key
        from repro.experiments.supervisor import HarnessChaosPlan

        w = _workload()
        digests = [
            key_digest(run_key(w, v, machine, blocking=b, method="sim"))
            for v, b in PAIRS
        ]
        plan = None
        for seed in range(64):
            candidate = HarnessChaosPlan(seed=seed, kill_prob=0.5)
            if any(candidate.worker_fate(d, 0) for d in digests):
                plan = candidate
                break
        engine = Engine(jobs=2, harness_chaos=plan)
        results = engine.run_batch(w, machine, PAIRS)
        _assert_identical(results, serial_results)
        assert engine.supervisor_stats.crashed > 0
        assert engine.supervisor_stats.respawns > 0

    @pytest.mark.resilience
    def test_poison_task_surfaces_after_healthy_runs_cached(
            self, machine, tmp_path):
        """A task that always kills its worker is quarantined; the
        healthy runs complete and are journaled before the raise."""
        from repro.experiments.journal import RunJournal
        from repro.experiments.supervisor import (
            HarnessChaosPlan,
            PoisonTaskError,
            RetryPolicy,
        )

        w = _workload()
        plan = HarnessChaosPlan(seed=0, kill_prob=1.0, max_faults=10**9)
        with RunJournal(tmp_path / "j.jsonl") as journal:
            engine = Engine(
                jobs=2, journal=journal, harness_chaos=plan,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                                  max_delay=0.02),
            )
            with pytest.raises(PoisonTaskError) as excinfo:
                engine.run_batch(w, machine, PAIRS)
            assert all(
                o.status == "quarantined" for o in excinfo.value.outcomes
            )
            assert len(excinfo.value.outcomes) == len(PAIRS)
            assert journal.stats.recorded == 0
