"""Tests for grain (tile-size) selection coupled to the machine model."""

import pytest

from repro.ir.dependence import DependenceSet
from repro.model.machine import example1_machine, pentium_cluster
from repro.model.completion import hodzic_shang_optimal_grain, lemma1_p0
from repro.tiling.grain import (
    face_elements_for_sides,
    messages_per_step,
    nonoverlap_grain_curve_point,
    overlap_grain_curve_point,
    tune_grain,
)


class TestMessagesPerStep:
    def test_example1(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])
        assert messages_per_step(d, mapped_dim=0) == 1

    def test_3d_stencil(self):
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        assert messages_per_step(d, mapped_dim=2) == 2

    def test_non_communicating_dim(self):
        d = DependenceSet([(1, 0, 0), (0, 0, 1)])
        assert messages_per_step(d, mapped_dim=2) == 1

    def test_bad_dim(self):
        d = DependenceSet([(1, 0)])
        with pytest.raises(ValueError):
            messages_per_step(d, mapped_dim=5)


class TestFaceElements:
    def test_paper_tile(self):
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        faces = face_elements_for_sides((4, 4, 444), d, mapped_dim=2)
        assert faces == [4 * 444, 4 * 444]

    def test_weighted_by_column_sum(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])  # c = (2, 2)
        faces = face_elements_for_sides((10, 10), d, mapped_dim=0)
        assert faces == [2 * 100 / 10]

    def test_validation(self):
        d = DependenceSet([(1, 0)])
        with pytest.raises(ValueError):
            face_elements_for_sides((4,), DependenceSet([(1, 0)]), mapped_dim=0)
        with pytest.raises(ValueError):
            face_elements_for_sides((0, 1), d, mapped_dim=0)


class TestGrainTuning:
    def test_hodzic_shang_example1(self):
        """Example 1: g = c·t_s/t_c = 100 for one neighbour."""
        assert hodzic_shang_optimal_grain(example1_machine(), 1) == pytest.approx(100.0)

    def test_curves_positive_and_finite(self):
        m = pentium_cluster()
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        p0 = lemma1_p0(100, 1000.0, 3)
        for g in (10.0, 100.0, 10000.0):
            t_non = nonoverlap_grain_curve_point(m, d, g, 2, p0, 3)
            t_ovl = overlap_grain_curve_point(m, d, g, 2, p0, 3)
            assert t_non > 0 and t_ovl > 0

    def test_overlap_curve_below_nonoverlap(self):
        """At equal grain and step count, max(A,B) <= serialized A+B'."""
        m = pentium_cluster()
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        p0 = lemma1_p0(100, 1000.0, 3)
        for g in (100.0, 1000.0, 100000.0):
            assert overlap_grain_curve_point(m, d, g, 2, p0, 3) <= (
                nonoverlap_grain_curve_point(m, d, g, 2, p0, 3)
            )

    def test_tune_grain_interior_optimum(self):
        m = pentium_cluster()
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        p0 = lemma1_p0(100, 1000.0, 3)
        g_opt, t_opt = tune_grain(
            m, d, overlap=True, mapped_dim=2, p0=p0, ndim=3,
            lower=8.0, upper=1e6,
        )
        assert 8.0 < g_opt < 1e6
        # Optimum beats both endpoints.
        assert t_opt <= overlap_grain_curve_point(m, d, 8.0, 2, p0, 3)
        assert t_opt <= overlap_grain_curve_point(m, d, 1e6, 2, p0, 3)

    def test_tune_grain_rejects_bad_bounds(self):
        m = pentium_cluster()
        d = DependenceSet([(1, 0)])
        with pytest.raises(ValueError):
            tune_grain(m, d, overlap=False, mapped_dim=0, p0=10.0, ndim=2,
                       lower=10.0, upper=5.0)


class TestDegenerateMachines:
    """tune_grain inherits the exact-endpoint guarantees of
    minimize_completion_over_grain on machines at the model's edges."""

    def test_comm_free_machine_returns_exact_endpoint(self):
        # t_s = t_t = 0: the curve is pure compute — monotone in g, so
        # the minimiser must return the exact winning endpoint instead
        # of a bounded-Brent point just inside it.
        m = pentium_cluster().with_(t_s=0.0, t_t=0.0)
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        p0 = lemma1_p0(100.0, 64.0, 3)
        g_opt, t_opt = tune_grain(
            m, d, overlap=False, mapped_dim=2, p0=p0, ndim=3,
            lower=8.0, upper=1e6,
        )
        assert g_opt in (8.0, 1e6) and t_opt > 0
        assert t_opt == nonoverlap_grain_curve_point(m, d, g_opt, 2, p0, 3)

    def test_zero_latency_machine_is_well_defined(self):
        m = pentium_cluster().with_(t_s=0.0)
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        p0 = lemma1_p0(100.0, 64.0, 3)
        for overlap in (True, False):
            g_opt, t_opt = tune_grain(
                m, d, overlap=overlap, mapped_dim=2, p0=p0, ndim=3,
                lower=8.0, upper=1e6,
            )
            assert 8.0 <= g_opt <= 1e6 and t_opt > 0

    def test_compute_starved_machine_is_well_defined(self):
        # Machine requires t_c > 0; 1e-30 is effectively compute-free.
        m = pentium_cluster().with_(t_c=1e-30)
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        p0 = lemma1_p0(100.0, 64.0, 3)
        g_opt, t_opt = tune_grain(
            m, d, overlap=True, mapped_dim=2, p0=p0, ndim=3,
            lower=8.0, upper=1e6,
        )
        assert 8.0 <= g_opt <= 1e6 and t_opt > 0
