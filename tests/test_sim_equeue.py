"""Differential and unit tests for the pluggable event queues.

The calendar queue must reproduce the heap's ``(time, seq)`` pop order
*exactly* — every experiment's bit-identity across queue backends
depends on it — so the core of this file is randomized differential
testing: interleaved push/pop schedules drawn from several timestamp
distributions (uniform, bursty, far-future, simultaneous) executed
against both backends, plus whole-simulation runs comparing final trace
state.
"""

import random

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled
from repro.sim.core import AUTO_CALENDAR_MIN_PENDING, Simulator
from repro.sim.equeue import CalendarQueue, EventQueue, HeapQueue


def _drain(q: EventQueue) -> list:
    out = []
    while q:
        out.append(q.pop())
    return out


def _entries(times, start_seq=0):
    return [(t, start_seq + k, None, None) for k, t in enumerate(times)]


class TestHeapQueue:
    def test_pop_order(self):
        q = HeapQueue()
        for e in _entries([3.0, 1.0, 2.0]):
            q.push(e)
        assert [e[0] for e in _drain(q)] == [1.0, 2.0, 3.0]

    def test_peek_matches_pop(self):
        q = HeapQueue()
        for e in _entries([2.0, 1.0]):
            q.push(e)
        assert q.peek() == (1.0, 1, None, None)
        assert q.pop() == (1.0, 1, None, None)
        assert len(q) == 1

    def test_empty(self):
        q = HeapQueue()
        assert not q
        assert q.peek() is None


class TestCalendarQueue:
    def test_pop_order_simple(self):
        q = CalendarQueue()
        for e in _entries([5.0, 0.5, 2.5, 2.5, 9.0]):
            q.push(e)
        assert [e[0] for e in _drain(q)] == [0.5, 2.5, 2.5, 5.0, 9.0]

    def test_seq_breaks_time_ties(self):
        q = CalendarQueue(width=1.0)
        q.push((1.0, 7, None, None))
        q.push((1.0, 3, None, None))
        q.push((1.0, 5, None, None))
        assert [e[1] for e in _drain(q)] == [3, 5, 7]

    def test_far_future_entries_use_overflow(self):
        q = CalendarQueue(width=1.0, nbuckets=4)
        q.push((0.5, 0, None, None))
        q.push((1000.0, 1, None, None))  # far past the 4-bucket horizon
        assert q.overflow_len == 1
        assert [e[0] for e in _drain(q)] == [0.5, 1000.0]

    def test_idle_gap_skipped(self):
        # Years between 1.0 and 1e6 are all empty; the pop after the
        # first entry must jump the window rather than walk buckets.
        q = CalendarQueue(width=0.25, nbuckets=8)
        q.push((1.0, 0, None, None))
        q.push((1e6, 1, None, None))
        assert q.pop()[0] == 1.0
        assert q.pop()[0] == 1e6

    def test_late_push_clamps_into_current_bucket(self):
        q = CalendarQueue(width=1.0, nbuckets=8)
        for e in _entries([0.5, 5.5]):
            q.push(e)
        assert q.pop()[0] == 0.5
        # 0.1 is numerically before the drain point; it must still pop
        # before 5.5 (clamped into the current bucket, heap-ordered).
        q.push((0.1, 2, None, None))
        assert [e[0] for e in _drain(q)] == [0.1, 5.5]

    def test_bootstrap_without_width(self):
        q = CalendarQueue()
        for e in _entries([float(k) for k in range(100)]):
            q.push(e)
        assert q.width > 0.0
        assert [e[0] for e in _drain(q)] == [float(k) for k in range(100)]

    def test_all_simultaneous(self):
        q = CalendarQueue()
        for e in _entries([4.25] * 50):
            q.push(e)
        assert [e[1] for e in _drain(q)] == list(range(50))

    def test_resize_triggers_and_preserves_order(self):
        q = CalendarQueue(width=100.0, nbuckets=2, bucket_cap=8)
        # Tight spacing vs the huge width crowds one bucket; interleave
        # pops so the gap EMA exists and the resize can fire.
        rng = random.Random(7)
        times = sorted(rng.uniform(0, 1) for _ in range(64))
        out = []
        for k, t in enumerate(times):
            q.push((t, k, None, None))
            if k % 8 == 7:
                out.append(q.pop())
        out.extend(_drain(q))
        assert q.resizes >= 1
        assert out == sorted(out)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(nbuckets=1)
        with pytest.raises(IndexError):
            CalendarQueue().pop()


def _random_schedule(rng: random.Random, n: int, mode: str):
    """An interleaved push/pop schedule; yields ('push', entry) and
    ('pop',) operations with pushes always outnumbering pops so far."""
    seq = 0
    live = 0
    now = 0.0
    for _ in range(n):
        if live and rng.random() < 0.4:
            live -= 1
            yield ("pop",)
            continue
        if mode == "uniform":
            t = now + rng.uniform(0.0, 10.0)
        elif mode == "bursty":
            t = now + (0.0 if rng.random() < 0.5 else rng.uniform(0.0, 1e-3))
        elif mode == "farfuture":
            t = now + (rng.uniform(0.0, 1.0) if rng.random() < 0.8
                       else rng.uniform(1e3, 1e6))
        else:  # ties
            t = now + rng.choice([0.0, 0.0, 0.5, 0.5, 1.0])
        yield ("push", (t, seq, None, None))
        seq += 1
        live += 1


@pytest.mark.parametrize("mode", ["uniform", "bursty", "farfuture", "ties"])
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestDifferential:
    def test_identical_pop_order(self, mode, seed):
        rng = random.Random(seed)
        ops = list(_random_schedule(rng, 600, mode))
        heap, cal = HeapQueue(), CalendarQueue(nbuckets=4, bucket_cap=8)
        now = 0.0
        for op in ops:
            if op[0] == "push":
                # Monotonic sim time: pushes are relative to the last pop.
                entry = (now + op[1][0], op[1][1], None, None)
                heap.push(entry)
                cal.push(entry)
            else:
                a, b = heap.pop(), cal.pop()
                assert a == b
                now = a[0]
        assert _drain(heap) == _drain(cal)

    def test_peek_agrees(self, mode, seed):
        rng = random.Random(seed + 100)
        heap, cal = HeapQueue(), CalendarQueue(nbuckets=4, bucket_cap=8)
        for op in _random_schedule(rng, 300, mode):
            if op[0] == "push":
                heap.push(op[1])
                cal.push(op[1])
            else:
                assert heap.peek() == cal.peek()
                assert heap.pop() == cal.pop()
        while heap:
            assert heap.peek() == cal.peek()
            assert heap.pop() == cal.pop()


class TestSimulatorBackends:
    def test_simulator_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            Simulator(queue="fibonacci")

    def test_accepts_queue_instance(self):
        sim = Simulator(queue=CalendarQueue())
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]

    def test_calendar_run_matches_heap_run(self):
        order = {}
        for backend in ("heap", "calendar"):
            sim = Simulator(queue=backend)
            log = []
            rng = random.Random(42)

            def proc(name, sim=sim, log=log, rng=rng):
                def body():
                    log.append((sim.now, name))
                    if len(log) < 400:
                        sim.schedule(rng.choice([0.0, 0.1, 1.0, 250.0]),
                                     body)
                return body

            for k in range(5):
                sim.schedule(0.0, proc(k))
            sim.run()
            order[backend] = log
        assert order["heap"] == order["calendar"]

    def test_full_run_identical_trace_state(self):
        """Whole-workload differential: both backends must produce the
        same completion time, message count and final trace records."""
        w = StencilWorkload(
            "equeue-diff", IterationSpace.from_extents([8, 8, 64]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        m = pentium_cluster()
        results = {
            backend: run_tiled(w, 8, m, blocking=False, trace=True,
                               queue=backend)
            for backend in ("heap", "calendar")
        }
        a, b = results["heap"], results["calendar"]
        assert repr(a.completion_time) == repr(b.completion_time)
        assert a.messages_sent == b.messages_sent
        assert a.event_count == b.event_count
        assert a.trace.records == b.trace.records
        assert a.network_stats == b.network_stats


class TestAutoQueue:
    """The ``"auto"`` default: start on the heap, migrate to the
    calendar queue when the pending population at a drain reaches
    :data:`~repro.sim.core.AUTO_CALENDAR_MIN_PENDING` — without ever
    changing a result."""

    def test_default_is_auto_starting_on_heap(self):
        assert Simulator().queue_backend == "heap"

    def test_small_population_never_leaves_the_heap(self):
        sim = Simulator()
        for k in range(AUTO_CALENDAR_MIN_PENDING - 1):
            sim.schedule(float(k + 1), lambda: None)
        sim.run()
        assert sim.queue_backend == "heap"

    def test_large_population_migrates_at_run(self):
        sim = Simulator()
        for k in range(AUTO_CALENDAR_MIN_PENDING):
            sim.schedule(float(k + 1), lambda: None)
        assert sim.queue_backend == "heap"  # migration happens at run()
        sim.run()
        assert sim.queue_backend == "CalendarQueue"

    def test_explicit_heap_never_migrates(self):
        sim = Simulator(queue="heap")
        for k in range(4 * AUTO_CALENDAR_MIN_PENDING):
            sim.schedule(float(k + 1), lambda: None)
        sim.run()
        assert sim.queue_backend == "heap"

    def test_auto_run_bit_identical_to_both_backends(self):
        order = {}
        for backend in ("auto", "heap", "calendar"):
            sim = Simulator(queue=backend)
            log = []
            rng = random.Random(7)

            def proc(name, sim=sim, log=log, rng=rng):
                def body():
                    log.append((sim.now, name))
                    if len(log) < 600:
                        sim.schedule(rng.choice([0.0, 0.1, 1.0, 250.0]),
                                     body)
                return body

            # Enough initial events to cross the migration threshold.
            for k in range(AUTO_CALENDAR_MIN_PENDING + 8):
                sim.schedule(0.0, proc(k))
            sim.run()
            order[backend] = log
        assert order["auto"] == order["heap"] == order["calendar"]

    def test_full_run_auto_matches_heap(self):
        w = StencilWorkload(
            "equeue-auto", IterationSpace.from_extents([8, 8, 64]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        m = pentium_cluster()
        results = {
            backend: run_tiled(w, 8, m, blocking=False, trace=True,
                               queue=backend)
            for backend in ("auto", "heap")
        }
        a, b = results["auto"], results["heap"]
        assert repr(a.completion_time) == repr(b.completion_time)
        assert a.messages_sent == b.messages_sent
        assert a.event_count == b.event_count
        assert a.trace.records == b.trace.records
