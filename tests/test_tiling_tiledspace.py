"""Tests for tiled-space bounds and per-tile index slices."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.loopnest import IterationSpace
from repro.util.intmat import FractionMatrix
from repro.tiling.tiledspace import tile_space
from repro.tiling.transform import TilingTransformation, rectangular_tiling


class TestRectangularBounds:
    def test_example1_tiled_space(self):
        """Paper Example 1: 10000×1000 with 10×10 tiles → 1000×100 tiles."""
        space = IterationSpace.from_extents([10000, 1000])
        ts = tile_space(space, rectangular_tiling([10, 10]))
        assert ts.lower == (0, 0)
        assert ts.upper == (999, 99)
        assert ts.extents == (1000, 100)
        assert ts.tile_count == 100000
        assert ts.exact

    def test_partial_tiles(self):
        space = IterationSpace.from_extents([10])
        ts = tile_space(space, rectangular_tiling([4]))
        assert ts.extents == (3,)
        assert ts.tile_point_count((0,)) == 4
        assert ts.tile_point_count((2,)) == 2
        assert ts.is_full_tile((0,)) and not ts.is_full_tile((2,))

    def test_tile_index_bounds(self):
        space = IterationSpace.from_extents([10])
        ts = tile_space(space, rectangular_tiling([4]))
        assert ts.tile_index_bounds((1,)) == ((4,), (7,))
        assert ts.tile_index_bounds((2,)) == ((8,), (9,))

    def test_negative_lower(self):
        space = IterationSpace([-5], [5])
        ts = tile_space(space, rectangular_tiling([4]))
        assert ts.lower == (-2,)
        assert ts.upper == (1,)

    def test_outside_tile_rejected(self):
        space = IterationSpace.from_extents([10])
        ts = tile_space(space, rectangular_tiling([4]))
        with pytest.raises(ValueError):
            ts.tile_index_bounds((5,))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            tile_space(IterationSpace.from_extents([4]), rectangular_tiling([2, 2]))

    def test_normalized_upper_and_last_tile(self):
        space = IterationSpace([-5], [5])
        ts = tile_space(space, rectangular_tiling([4]))
        assert ts.last_tile == (1,)
        assert ts.normalized_upper() == (3,)

    def test_tiles_enumeration(self):
        space = IterationSpace.from_extents([4, 4])
        ts = tile_space(space, rectangular_tiling([2, 2]))
        tiles = list(ts.tiles())
        assert len(tiles) == ts.tile_count == 4
        assert tiles[0] == (0, 0) and tiles[-1] == (1, 1)

    def test_contains(self):
        space = IterationSpace.from_extents([4, 4])
        ts = tile_space(space, rectangular_tiling([2, 2]))
        assert ts.contains((1, 1))
        assert not ts.contains((2, 0))
        assert not ts.contains((0,))


class TestGeneralBounds:
    def test_skewed_bounding_box_covers_all_tiles(self):
        space = IterationSpace.from_extents([8, 8])
        t = TilingTransformation(P=FractionMatrix([[2, 1], [0, 2]]))
        ts = tile_space(space, t)
        assert not ts.exact
        for p in space.points():
            assert ts.contains(t.tile_of(p))

    def test_general_tiling_rejects_index_bounds(self):
        space = IterationSpace.from_extents([8, 8])
        t = TilingTransformation(P=FractionMatrix([[2, 1], [0, 2]]))
        ts = tile_space(space, t)
        with pytest.raises(ValueError):
            ts.tile_index_bounds((0, 0))


_extent = st.integers(min_value=1, max_value=30)
_side = st.integers(min_value=1, max_value=9)


class TestProperties:
    @given(st.lists(st.tuples(_extent, _side), min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_tile_point_counts_partition_the_space(self, dims):
        """Every index point belongs to exactly one tile, so per-tile
        counts sum to the space size."""
        extents = [e for e, _ in dims]
        sides = [s for _, s in dims]
        space = IterationSpace.from_extents(extents)
        ts = tile_space(space, rectangular_tiling(sides))
        assert sum(ts.tile_point_count(t) for t in ts.tiles()) == space.size

    @given(st.lists(st.tuples(_extent, _side), min_size=1, max_size=2))
    @settings(max_examples=40, deadline=None)
    def test_every_point_maps_into_bounds(self, dims):
        extents = [e for e, _ in dims]
        sides = [s for _, s in dims]
        space = IterationSpace.from_extents(extents)
        tiling = rectangular_tiling(sides)
        ts = tile_space(space, tiling)
        for p in space.points():
            tile = tiling.tile_of(p)
            assert ts.contains(tile)
            lo, hi = ts.tile_index_bounds(tile)
            assert all(a <= x <= b for a, x, b in zip(lo, p, hi))
