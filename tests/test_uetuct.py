"""Tests for the UET/UET-UCT grid scheduling theory ([1])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uetuct.dag import build_grid_dag, critical_path_makespan
from repro.uetuct.grid import (
    optimal_mapping_dimension,
    uet_makespan_dp,
    uet_optimal_makespan,
    uet_uct_hyperplane,
    uet_uct_makespan_dp,
    uet_uct_optimal_makespan,
    unit_dependence_vectors,
)


class TestBasics:
    def test_unit_vectors(self):
        assert unit_dependence_vectors(2) == ((1, 0), (0, 1))
        with pytest.raises(ValueError):
            unit_dependence_vectors(0)

    def test_uet_formula(self):
        assert uet_optimal_makespan((3, 4)) == 8
        assert uet_optimal_makespan((0, 0)) == 1

    def test_mapping_dimension(self):
        assert optimal_mapping_dimension((2, 9, 4)) == 1
        assert optimal_mapping_dimension((5, 5)) == 0

    def test_hyperplane(self):
        assert uet_uct_hyperplane(3, 1) == (2, 1, 2)
        with pytest.raises(ValueError):
            uet_uct_hyperplane(2, 2)

    def test_uct_formula(self):
        # map along dim 1 (largest): 2·3 + 9 + 1
        assert uet_uct_optimal_makespan((3, 9)) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            uet_optimal_makespan((-1, 2))
        with pytest.raises(ValueError):
            uet_uct_makespan_dp((2, 2), 5)


class TestDPvsFormulas:
    def test_uet_dp_matches_formula(self):
        for upper in [(0,), (3,), (2, 2), (3, 4), (2, 3, 4)]:
            assert uet_makespan_dp(upper) == uet_optimal_makespan(upper)

    def test_uct_dp_matches_formula_on_optimal_dim(self):
        for upper in [(3, 9), (2, 2), (4, 1), (2, 3, 5)]:
            i = optimal_mapping_dimension(upper)
            assert uet_uct_makespan_dp(upper, i) == uet_uct_optimal_makespan(upper)

    def test_largest_dimension_is_optimal_choice(self):
        """[1]'s space-schedule theorem, checked exhaustively."""
        for upper in [(3, 9), (5, 2), (2, 3, 5), (4, 4, 1)]:
            spans = [uet_uct_makespan_dp(upper, d) for d in range(len(upper))]
            i = optimal_mapping_dimension(upper)
            assert spans[i] == min(spans)

    def test_grid_size_guard(self):
        with pytest.raises(ValueError, match="too large"):
            uet_makespan_dp((300, 300, 300))


class TestNetworkxCrossCheck:
    def test_uet(self):
        for upper in [(3,), (2, 3), (2, 2, 2)]:
            assert critical_path_makespan(upper) == uet_makespan_dp(upper)

    def test_uct(self):
        for upper in [(3, 9), (2, 3, 4)]:
            for d in range(len(upper)):
                assert critical_path_makespan(upper, d) == (
                    uet_uct_makespan_dp(upper, d)
                )

    def test_dag_structure(self):
        g = build_grid_dag((1, 1))
        # 4 grid nodes + source
        assert g.number_of_nodes() == 5
        assert g.has_edge((0, 0), (0, 1))
        assert g.has_edge((0, 0), (1, 0))
        assert not g.has_edge((0, 0), (1, 1))

    def test_dag_validation(self):
        with pytest.raises(ValueError):
            build_grid_dag((-1,))
        with pytest.raises(ValueError):
            build_grid_dag((2, 2), 5)


class TestOverlapScheduleConnection:
    def test_overlap_pi_equals_uetuct_hyperplane(self):
        from repro.schedule.overlap import overlap_pi

        assert overlap_pi(3, 2) == uet_uct_hyperplane(3, 2)


_upper = st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4))


class TestProperties:
    @given(_upper)
    @settings(max_examples=30, deadline=None)
    def test_dp_formula_networkx_triple_agreement(self, upper):
        i = optimal_mapping_dimension(upper)
        formula = uet_uct_optimal_makespan(upper)
        assert uet_uct_makespan_dp(upper, i) == formula
        assert critical_path_makespan(upper, i) == formula

    @given(_upper)
    @settings(max_examples=30, deadline=None)
    def test_uct_at_least_uet(self, upper):
        """Communication can only lengthen the schedule."""
        for d in range(3):
            assert uet_uct_makespan_dp(upper, d) >= uet_makespan_dp(upper)

    @given(_upper)
    @settings(max_examples=30, deadline=None)
    def test_formula_is_lower_bound_over_mappings(self, upper):
        best = min(uet_uct_makespan_dp(upper, d) for d in range(3))
        assert uet_uct_optimal_makespan(upper) == best


class TestGeneralizedCommDelay:
    """The delay-c generalisation: UET-UCT is c = 1, UET is c = 0."""

    def test_reduces_to_special_cases(self):
        from repro.uetuct.grid import (
            generalized_hyperplane,
            generalized_optimal_makespan,
        )

        u = (3, 7, 2)
        assert generalized_optimal_makespan(u, 0) == uet_optimal_makespan(u)
        assert generalized_optimal_makespan(u, 1) == uet_uct_optimal_makespan(u)
        assert generalized_hyperplane(3, 1, 1) == uet_uct_hyperplane(3, 1)
        assert generalized_hyperplane(3, 1, 0) == (1, 1, 1)

    def test_validation(self):
        from repro.uetuct.grid import (
            generalized_hyperplane,
            generalized_optimal_makespan,
        )

        with pytest.raises(ValueError):
            generalized_hyperplane(3, 1, -1)
        with pytest.raises(ValueError):
            generalized_optimal_makespan((2, 2), -1)

    @given(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
        st.integers(0, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_formula_matches_dp_for_any_delay(self, upper, c):
        from repro.uetuct.grid import generalized_optimal_makespan

        i = optimal_mapping_dimension(upper)
        assert uet_uct_makespan_dp(upper, i, c) == (
            generalized_optimal_makespan(upper, c)
        )

    @given(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
        st.integers(0, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_largest_dim_optimal_for_any_delay(self, upper, c):
        spans = [uet_uct_makespan_dp(upper, d, c) for d in range(3)]
        i = optimal_mapping_dimension(upper)
        assert spans[i] == min(spans)

    @given(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        st.integers(0, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_makespan_monotone_in_delay(self, upper, c):
        i = optimal_mapping_dimension(upper)
        assert uet_uct_makespan_dp(upper, i, c + 1) >= (
            uet_uct_makespan_dp(upper, i, c)
        )
