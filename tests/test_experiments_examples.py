"""The paper's worked examples must reproduce exactly."""

import pytest

from repro.experiments.examples_paper import example1, example3


class TestExample1:
    """§3 Example 1, every intermediate number."""

    def setup_method(self):
        self.e = example1()

    def test_grain(self):
        assert self.e.grain == pytest.approx(100.0)
        assert self.e.tile_side == 10

    def test_tiled_space(self):
        assert self.e.tiled_extents == (1000, 100)
        assert self.e.mapped_dim == 0

    def test_communication_volume(self):
        assert self.e.v_comm == pytest.approx(20.0)

    def test_step_components_in_tc(self):
        assert self.e.t_comp_tc == pytest.approx(100.0)
        assert self.e.t_startup_tc == pytest.approx(200.0)
        assert self.e.t_transmit_tc == pytest.approx(64.0)  # 20·4·0.8

    def test_schedule_length(self):
        assert self.e.schedule_length == 1099

    def test_total(self):
        assert self.e.total_tc == pytest.approx(400036.0)
        assert self.e.total_seconds == pytest.approx(0.400036)


class TestExample3:
    """§4 Example 3: the overlapping schedule on the same loop."""

    def setup_method(self):
        self.e = example3()

    def test_pi(self):
        assert self.e.pi == (1, 2)

    def test_schedule_length(self):
        assert self.e.schedule_length == 1198

    def test_cpu_bound(self):
        assert self.e.cpu_bound
        assert self.e.comm_side_tc < self.e.cpu_side_tc

    def test_paper_total(self):
        assert self.e.total_tc_paper_style == pytest.approx(179700.0)
        # The paper prints "0.24 secs" but 179 700 µs is 0.1797 s; we keep
        # the arithmetic and note the slip in EXPERIMENTS.md.
        assert self.e.total_seconds_paper_style == pytest.approx(0.1797)

    def test_overlap_beats_example1(self):
        e1 = example1()
        assert self.e.total_tc_paper_style < e1.total_tc
