"""Bit-identity and protocol tests for rank-sharded simulation.

The load-bearing property: for every shard count, a sharded run must be
*bit-identical* to the single-process :class:`~repro.sim.mpi.World` run
— completion time, message count, per-rank term attribution and busy
time — because receiver-side FIFO submission order is reconstructed
exactly (deferred injection + sender-lineage tie-break, see
:mod:`repro.sim.sharding`).  These tests pin that equivalence for both
schedules, under fault injection, across queue backends, and through
the multiprocessing driver.
"""

import dataclasses

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled, run_tiled_robust, run_tiled_sharded
from repro.sim.faults import FaultPlan
from repro.sim.sharding import (
    ShardedSimulation,
    ShardWorld,
    shard_bounds,
)


def _workload(depth=64):
    return StencilWorkload(
        "shard-test", IterationSpace.from_extents([8, 8, depth]),
        sqrt_kernel_3d(), (4, 4, 1), 2,
    )


V = 8


def _reference(w, m, *, blocking, faults=None):
    """Single-process run plus its per-rank trace aggregates."""
    if faults is None:
        res = run_tiled(w, V, m, blocking=blocking, trace="streaming")
        trace = res.trace
        completion, messages = res.completion_time, res.messages_sent
    else:
        res = run_tiled_robust(w, V, m, blocking=blocking, faults=faults,
                               trace="streaming")
        assert res.status == "completed"
        trace = res.trace
        completion, messages = res.completion_time, res.outcome.messages_sent
    terms = {r: trace.term_seconds(r) for r in range(w.num_processors)}
    busy = {r: trace.busy_time(r) for r in range(w.num_processors)}
    return completion, messages, terms, busy


def _assert_identical(sharded, completion, messages, terms, busy):
    assert repr(sharded.completion_time) == repr(completion)
    assert sharded.messages_sent == messages
    for rank, ref_terms in terms.items():
        got = sharded.rank_terms[rank]
        assert set(got) == set(ref_terms)
        for term, val in ref_terms.items():
            assert repr(got[term]) == repr(val), (rank, term)
    for rank, val in busy.items():
        assert repr(sharded.rank_busy[rank]) == repr(val), rank


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(8, 4) == [range(0, 2), range(2, 4),
                                      range(4, 6), range(6, 8)]

    def test_uneven_split_front_loads_remainder(self):
        assert shard_bounds(10, 3) == [range(0, 4), range(4, 7),
                                       range(7, 10)]

    def test_single_shard(self):
        assert shard_bounds(5, 1) == [range(0, 5)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            shard_bounds(4, 0)
        with pytest.raises(ValueError):
            shard_bounds(4, 5)


@pytest.mark.parametrize("blocking", [False, True])
class TestBitIdentity:
    def test_matches_single_process(self, blocking):
        w, m = _workload(), pentium_cluster()
        completion, messages, terms, busy = _reference(w, m,
                                                       blocking=blocking)
        for nshards in (1, 2, 3, 5, 16):
            res = run_tiled_sharded(w, V, m, blocking=blocking,
                                    nshards=nshards, trace="streaming")
            _assert_identical(res, completion, messages, terms, busy)
            assert res.nshards == nshards
            assert res.windows > 0

    def test_calendar_backend_matches(self, blocking):
        w, m = _workload(depth=32), pentium_cluster()
        completion, messages, terms, busy = _reference(w, m,
                                                       blocking=blocking)
        res = run_tiled_sharded(w, V, m, blocking=blocking, nshards=3,
                                trace="streaming", queue="calendar")
        _assert_identical(res, completion, messages, terms, busy)

    def test_full_record_union_matches(self, blocking):
        """Strongest form of bit-identity: the union of the shards' full
        trace records — every interval, with labels — equals the
        single-process record set exactly."""
        from repro.runtime.executor import _TiledPrograms

        w, m = _workload(depth=32), pentium_cluster()
        ref = run_tiled(w, V, m, blocking=blocking, trace=True)

        def key(rec):
            return (rec.rank, rec.resource, repr(rec.start), repr(rec.end),
                    rec.kind, rec.label, rec.term)

        programs = _TiledPrograms(w, V, m, blocking)()
        sharded = ShardedSimulation(m, w.num_processors, 3, trace="full")
        shards = sharded._make_shards(None)
        try:
            for s in shards:
                s.spawn(programs)
            sharded._drive(shards, 50_000_000)
            got = sorted(
                key(r) for s in shards for r in s.world.trace.records
            )
        finally:
            for s in shards:
                s.close()
        assert got == sorted(key(r) for r in ref.trace.records)


class TestFaultInjection:
    def test_seeded_faults_match_single_process(self):
        # Degradation windows + latency jitter perturb timing but keep
        # the run completing; fates are keyed by message identity, so
        # the sharded run must still be bit-identical.
        w, m = _workload(depth=32), pentium_cluster()
        faults = FaultPlan(seed=11, jitter=2e-5)
        completion, messages, terms, busy = _reference(
            w, m, blocking=False, faults=faults
        )
        res = run_tiled_sharded(w, V, m, blocking=False, nshards=4,
                                trace="streaming", faults=faults)
        _assert_identical(res, completion, messages, terms, busy)

    def test_drop_every_nth_rejected(self):
        w, m = _workload(), pentium_cluster()
        with pytest.raises(ValueError, match="drop_every_nth"):
            run_tiled_sharded(w, V, m, blocking=False, nshards=2,
                              faults=FaultPlan(drop_every_nth=5))


class TestMultiprocessing:
    def test_processes_match_in_process(self):
        w, m = _workload(depth=32), pentium_cluster()
        completion, messages, terms, busy = _reference(w, m, blocking=False)
        res = run_tiled_sharded(w, V, m, blocking=False, nshards=2,
                                trace="streaming", processes=True)
        _assert_identical(res, completion, messages, terms, busy)

    def test_processes_need_factory(self):
        m = pentium_cluster()
        sharded = ShardedSimulation(m, 4, 2, processes=True)
        with pytest.raises(ValueError, match="factory"):
            sharded.run([lambda ctx: iter(())] * 4)


class TestRestrictions:
    def test_zero_latency_machine_rejected(self):
        m = dataclasses.replace(pentium_cluster(), network_latency=0.0)
        with pytest.raises(ValueError, match="network_latency"):
            ShardedSimulation(m, 4, 2)

    def test_shard_world_cannot_run_directly(self):
        m = pentium_cluster()
        world = ShardWorld(m, 4, range(0, 2), [0, 0, 1, 1])
        with pytest.raises(RuntimeError, match="ShardedSimulation"):
            world.run([])

    def test_barrier_raises_in_shard(self):
        m = pentium_cluster()
        sharded = ShardedSimulation(m, 2, 2)

        def prog(ctx):
            yield ctx.barrier()

        with pytest.raises(RuntimeError, match="barrier"):
            sharded.run([prog, prog])

    def test_programs_xor_factory(self):
        sharded = ShardedSimulation(pentium_cluster(), 2, 1)
        with pytest.raises(ValueError, match="exactly one"):
            sharded.run()
        with pytest.raises(ValueError, match="exactly one"):
            sharded.run([lambda ctx: iter(())] * 2,
                        factory=lambda: [])


class TestMergedResult:
    def test_term_totals_and_utilization(self):
        w, m = _workload(depth=32), pentium_cluster()
        res = run_tiled_sharded(w, V, m, blocking=False, nshards=2,
                                trace="streaming")
        totals = res.term_seconds()
        assert totals  # non-empty term attribution
        assert all(v >= 0.0 for v in totals.values())
        util = res.mean_utilization()
        assert 0.0 < util <= 1.0

    def test_network_stats_quantiles_shard_invariant(self):
        w, m = _workload(depth=32), pentium_cluster()
        stats = [
            run_tiled_sharded(w, V, m, blocking=False,
                              nshards=n).network_stats
            for n in (1, 4)
        ]
        assert stats[0] == stats[1]

    def test_untraced_run_has_no_rank_aggregates(self):
        w, m = _workload(depth=32), pentium_cluster()
        res = run_tiled_sharded(w, V, m, blocking=False, nshards=2)
        assert res.rank_terms == {}
        assert res.mean_utilization() == 0.0


class TestEngineIntegration:
    def test_engine_run_sharded_caches(self, tmp_path):
        from repro.experiments.cache import SimCache
        from repro.experiments.engine import Engine

        w, m = _workload(depth=32), pentium_cluster()
        engine = Engine(jobs=1, cache=SimCache(tmp_path))
        first = engine.run_sharded(w, V, m, blocking=False, nshards=2,
                                   processes=False)
        again = engine.run_sharded(w, V, m, blocking=False, nshards=2,
                                   processes=False)
        assert repr(again.completion_time) == repr(first.completion_time)
        assert again.messages_sent == first.messages_sent
        assert again.event_count == first.event_count
        assert again.windows == first.windows
        assert again.network_stats == first.network_stats

    def test_engine_matches_direct(self):
        from repro.experiments.engine import Engine

        w, m = _workload(depth=32), pentium_cluster()
        ref = run_tiled(w, V, m, blocking=False)
        res = Engine(jobs=1).run_sharded(w, V, m, blocking=False,
                                         nshards=2, processes=False)
        assert repr(res.completion_time) == repr(ref.completion_time)
        assert res.messages_sent == ref.messages_sent
