"""Tests for iteration spaces and loop nests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.loopnest import IterationSpace, LoopNest
from repro.ir.statement import stencil_statement


class TestIterationSpace:
    def test_basic(self):
        s = IterationSpace([0, 0], [9, 4])
        assert s.ndim == 2
        assert s.extents == (10, 5)
        assert s.size == 50

    def test_from_extents(self):
        s = IterationSpace.from_extents([3, 4])
        assert s.lower == (0, 0)
        assert s.upper == (2, 3)

    def test_from_extents_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            IterationSpace.from_extents([3, 0])

    def test_negative_lower_allowed(self):
        s = IterationSpace([-2, -2], [2, 2])
        assert s.size == 25

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty iteration space"):
            IterationSpace([1], [0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            IterationSpace([0], [1, 2])

    def test_contains(self):
        s = IterationSpace.from_extents([3, 3])
        assert s.contains((0, 0))
        assert s.contains((2, 2))
        assert not s.contains((3, 0))
        assert not s.contains((0, -1))
        assert not s.contains((0,))

    def test_points_lexicographic(self):
        s = IterationSpace.from_extents([2, 2])
        assert list(s.points()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_points_count_matches_size(self):
        s = IterationSpace([1, -1], [3, 1])
        assert len(list(s.points())) == s.size

    def test_corner_points(self):
        s = IterationSpace.from_extents([2, 3])
        corners = s.corner_points()
        assert len(corners) == 4
        assert (0, 0) in corners and (1, 2) in corners

    def test_corner_points_degenerate_dim(self):
        s = IterationSpace([0, 5], [3, 5])
        assert len(s.corner_points()) == 2

    def test_str(self):
        assert "0<=i1<=2" in str(IterationSpace.from_extents([3]))

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_size_is_product_of_extents(self, extents):
        s = IterationSpace.from_extents(extents)
        prod = 1
        for e in extents:
            prod *= e
        assert s.size == prod
        assert all(s.contains(p) for p in s.points())


class TestLoopNest:
    def test_dependences_from_statements(self):
        space = IterationSpace.from_extents([4, 4])
        nest = LoopNest(space, [stencil_statement("A", [(-1, 0), (0, -1)])])
        assert set(nest.dependence_vectors()) == {(1, 0), (0, 1)}

    def test_dimension_mismatch(self):
        space = IterationSpace.from_extents([4])
        with pytest.raises(ValueError):
            LoopNest(space, [stencil_statement("A", [(-1, 0)])])

    def test_type_check(self):
        with pytest.raises(TypeError):
            LoopNest("not a space")

    def test_union_deduplicates(self):
        space = IterationSpace.from_extents([4, 4])
        s1 = stencil_statement("A", [(-1, 0)])
        s2 = stencil_statement("A", [(-1, 0), (0, -1)])
        nest = LoopNest(space, [s1, s2])
        assert nest.dependence_vectors() == ((1, 0), (0, 1))

    def test_empty_body(self):
        nest = LoopNest(IterationSpace.from_extents([2]))
        assert nest.dependence_vectors() == ()
        assert nest.ndim == 1
