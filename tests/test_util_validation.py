"""Tests for the shared argument validators."""

import numpy as np
import pytest

from repro.util.validation import (
    require_int_vector,
    require_nonnegative_float,
    require_nonnegative_int,
    require_positive_float,
    require_positive_int,
    require_same_length,
)


class TestPositiveInt:
    def test_accepts_int(self):
        assert require_positive_int(3, "x") == 3

    def test_accepts_integral_float(self):
        assert require_positive_int(3.0, "x") == 3

    def test_accepts_numpy_integer(self):
        assert require_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive_int(-1, "x")

    def test_rejects_fractional_float(self):
        with pytest.raises(TypeError):
            require_positive_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive_int(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            require_positive_int("3", "x")


class TestNonnegativeInt:
    def test_accepts_zero(self):
        assert require_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_nonnegative_int(-1, "x")


class TestFloats:
    def test_positive(self):
        assert require_positive_float(0.5, "x") == 0.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive_float(0.0, "x")

    def test_nonnegative_accepts_zero(self):
        assert require_nonnegative_float(0, "x") == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            require_nonnegative_float(-0.1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive_float(True, "x")

    def test_accepts_numpy_floating(self):
        assert require_positive_float(np.float64(1.5), "x") == 1.5


class TestVectors:
    def test_int_vector(self):
        assert require_int_vector([1, 2.0, np.int32(3)], "v") == (1, 2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            require_int_vector([], "v")

    def test_element_error_names_index(self):
        with pytest.raises(TypeError, match=r"v\[1\]"):
            require_int_vector([1, "a"], "v")

    def test_same_length(self):
        require_same_length([1], [2], "a", "b")
        with pytest.raises(ValueError, match="a.*b"):
            require_same_length([1], [2, 3], "a", "b")
