"""Tests for the paper-style loop-nest parser."""

import pytest

from repro.ir.parser import ParseError, parse_loop_nest

EXAMPLE1 = """
for i1 = 0 to 9999
  for i2 = 0 to 999
    A(i1, i2) = A(i1-1, i2-1) + A(i1-1, i2) + A(i1, i2-1)
  endfor
endfor
"""


class TestHappyPath:
    def test_example1(self):
        nest = parse_loop_nest(EXAMPLE1)
        assert nest.space.extents == (10000, 1000)
        assert set(nest.dependence_vectors()) == {(1, 1), (1, 0), (0, 1)}

    def test_dotdot_syntax_and_colons(self):
        nest = parse_loop_nest(
            "for i = 0..7:\n for j = 2..5:\n  B(i, j) = B(i-1, j)"
        )
        assert nest.space.lower == (0, 2)
        assert nest.space.upper == (7, 5)
        assert nest.dependence_vectors() == ((1, 0),)

    def test_negative_bounds(self):
        nest = parse_loop_nest("for i = -3 to 3\n A(i) = A(i-2)")
        assert nest.space.lower == (-3,)
        assert nest.dependence_vectors() == ((2,),)

    def test_positive_offsets_in_reads(self):
        # Read at i+1 of a *different* array: no self dependence.
        nest = parse_loop_nest("for i = 0 to 9\n A(i) = B(i+1)")
        assert nest.dependence_vectors() == ()

    def test_multiple_statements(self):
        nest = parse_loop_nest(
            "for i = 0 to 9\n for j = 0 to 9\n"
            "  A(i, j) = A(i-1, j)\n"
            "  B(i, j) = B(i, j-1) + A(i, j)\n"
        )
        assert set(nest.dependence_vectors()) == {(1, 0), (0, 1)}

    def test_comments_and_blanks(self):
        nest = parse_loop_nest(
            "# header comment\nfor i = 0 to 3\n\n"
            " A(i) = A(i-1)  # trailing comment\n"
        )
        assert nest.space.extents == (4,)

    def test_3d(self):
        nest = parse_loop_nest(
            "for i = 0 to 15\n for j = 0 to 15\n  for k = 0 to 999\n"
            "   A(i, j, k) = A(i-1, j, k) + A(i, j-1, k) + A(i, j, k-1)\n"
        )
        assert set(nest.dependence_vectors()) == {
            (1, 0, 0), (0, 1, 0), (0, 0, 1)
        }

    def test_do_keyword_and_case(self):
        nest = parse_loop_nest("FOR i = 0 TO 5 DO\n A(i) = A(i-1)\nENDFOR")
        assert nest.space.extents == (6,)


class TestErrors:
    def test_empty(self):
        with pytest.raises(ParseError, match="no loop headers"):
            parse_loop_nest("")

    def test_no_statements(self):
        with pytest.raises(ParseError, match="no assignment"):
            parse_loop_nest("for i = 0 to 3")

    def test_statement_before_loop(self):
        with pytest.raises(ParseError, match="before any loop"):
            parse_loop_nest("A(i) = A(i-1)\nfor i = 0 to 3")

    def test_imperfect_nesting(self):
        with pytest.raises(ParseError, match="perfectly nested"):
            parse_loop_nest(
                "for i = 0 to 3\n A(i) = A(i-1)\n"
                "for j = 0 to 3\n A(j) = A(j-1)"
            )

    def test_duplicate_variable(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_loop_nest("for i = 0 to 3\n for i = 0 to 3\n  A(i, i) = A(i-1, i)")

    def test_unknown_variable_in_index(self):
        with pytest.raises(ParseError, match="unknown loop variable"):
            parse_loop_nest("for i = 0 to 3\n A(i) = A(z-1)")

    def test_arity_mismatch(self):
        with pytest.raises(ParseError, match="indices"):
            parse_loop_nest("for i = 0 to 3\n for j = 0 to 3\n  A(i) = A(i-1)")

    def test_nonlinear_index(self):
        with pytest.raises(ParseError, match="index expression"):
            parse_loop_nest("for i = 0 to 3\n A(2*i) = A(i-1)")

    def test_out_of_order_indices(self):
        with pytest.raises(ParseError, match="loop order"):
            parse_loop_nest(
                "for i = 0 to 3\n for j = 0 to 3\n  A(j, i) = A(i-1, j)"
            )

    def test_repeated_variable_in_reference(self):
        with pytest.raises(ParseError, match="twice"):
            parse_loop_nest(
                "for i = 0 to 3\n for j = 0 to 3\n  A(i, i) = A(i-1, j)"
            )

    def test_gibberish_line(self):
        with pytest.raises(ParseError, match="cannot parse"):
            parse_loop_nest("for i = 0 to 3\n while true")

    def test_line_number_in_error(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_loop_nest("for i = 0 to 3\n ???")


class TestEndToEnd:
    def test_parsed_nest_drives_the_tiling_pipeline(self):
        """Text → IR → tiling → schedules, the full front door."""
        from repro.ir.dependence import DependenceSet
        from repro.schedule.nonoverlap import NonoverlapSchedule
        from repro.tiling.dependences import supernode_dependence_set
        from repro.tiling.tiledspace import tile_space
        from repro.tiling.transform import rectangular_tiling

        nest = parse_loop_nest(EXAMPLE1)
        deps = DependenceSet(nest.dependence_vectors())
        tiling = rectangular_tiling([10, 10])
        assert tiling.is_legal(deps)
        ts = tile_space(nest.space, tiling)
        sched = NonoverlapSchedule(ts, supernode_dependence_set(tiling, deps))
        assert sched.num_steps == 1099
