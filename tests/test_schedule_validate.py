"""The step-level schedule validator: clean built-ins, caught corruptions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.ir.loopnest import IterationSpace
from repro.schedule.mapping import ProcessorMapping
from repro.schedule.nonoverlap import NonoverlapSchedule
from repro.schedule.overlap import OverlapSchedule
from repro.schedule.validate import (
    ValidationIssue,
    validate_builtin,
    validate_schedule,
)
from repro.tiling.tiledspace import tile_space
from repro.tiling.transform import rectangular_tiling

UNIT3 = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
DIAG2 = DependenceSet([(1, 0), (0, 1), (1, 1)])


def _tiled(extents, sides):
    return tile_space(IterationSpace.from_extents(extents), rectangular_tiling(sides))


class TestBuiltinsValid:
    def test_nonoverlap_clean(self):
        ts = _tiled([8, 8, 32], [4, 4, 4])
        assert validate_builtin(NonoverlapSchedule(ts, UNIT3)) == []

    def test_overlap_clean(self):
        ts = _tiled([8, 8, 32], [4, 4, 4])
        assert validate_builtin(OverlapSchedule(ts, UNIT3)) == []

    def test_diagonal_dependences_clean(self):
        ts = _tiled([32, 8], [4, 4])
        for cls in (NonoverlapSchedule, OverlapSchedule):
            sched = cls(ts, DIAG2, ProcessorMapping(ts, mapped_dim=0))
            assert validate_builtin(sched) == []

    @given(
        st.integers(1, 3), st.integers(1, 3), st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_builtins_clean_on_random_spaces(self, a, b, c):
        ts = _tiled([2 * a, 2 * b, 2 * c], [2, 2, 2])
        assert validate_builtin(NonoverlapSchedule(ts, UNIT3)) == []
        assert validate_builtin(OverlapSchedule(ts, UNIT3)) == []


class TestViolationsCaught:
    def test_nonoverlap_under_pipelined_semantics_fails(self):
        """Π = (1,…,1) does not leave room for cross-processor message
        latency: the validator rejects it under the pipelined rules —
        exactly why the paper modifies the hyperplane."""
        ts = _tiled([8, 8, 32], [4, 4, 4])
        sched = NonoverlapSchedule(ts, UNIT3)
        issues = validate_schedule(sched, semantics="pipelined")
        assert issues
        assert all(i.kind == "dataflow-violation" for i in issues)
        assert any("cross-processor" in i.detail for i in issues)

    def test_overlap_under_serialized_semantics_passes(self):
        """The overlap schedule is stricter: it remains valid under the
        weaker serialized rules (just with wasted slack)."""
        ts = _tiled([8, 8, 32], [4, 4, 4])
        sched = OverlapSchedule(ts, UNIT3)
        assert validate_schedule(sched, semantics="serialized") == []

    def test_issue_rendering(self):
        ts = _tiled([8, 8, 32], [4, 4, 4])
        issues = validate_schedule(
            NonoverlapSchedule(ts, UNIT3), semantics="pipelined"
        )
        text = str(issues[0])
        assert "dataflow-violation" in text
        assert "tile=" in text

    def test_unknown_semantics(self):
        ts = _tiled([8, 8], [4, 4])
        sched = NonoverlapSchedule(ts, DependenceSet([(1, 0), (0, 1)]))
        with pytest.raises(ValueError):
            validate_schedule(sched, semantics="quantum")

    def test_processor_conflict_detection(self):
        """A degenerate schedule object whose step function collides is
        caught via the exclusivity rule; simulate by validating a 1-wide
        mapped dimension schedule against manipulated steps."""

        class Collider(NonoverlapSchedule):
            def step_of(self, tile):  # type: ignore[override]
                return 0  # everything at once

        ts = _tiled([8, 8], [4, 4])
        sched = Collider(ts, DependenceSet([(1, 0), (0, 1)]))
        issues = validate_schedule(sched, semantics="serialized")
        kinds = {i.kind for i in issues}
        assert "processor-conflict" in kinds
        assert "dataflow-violation" in kinds


class TestIssueDataclass:
    def test_str_without_optionals(self):
        issue = ValidationIssue("kind", "detail")
        assert str(issue) == "kind detail"
