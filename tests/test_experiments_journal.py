"""Run journal: durable append, crash-truncated loads, resume accounting."""

from __future__ import annotations

import json

from repro.experiments.journal import JOURNAL_VERSION, RunJournal


def test_record_and_get_roundtrip(tmp_path):
    path = tmp_path / "j.jsonl"
    with RunJournal(path) as j:
        j.record("d1", {"completion_time": 1.5})
        j.record("d2", {"completion_time": 2.5})
        assert len(j) == 2
        assert "d1" in j and "d3" not in j
        assert j.get("d1") == {"completion_time": 1.5}
        assert j.get("d3") is None
        assert j.stats.recorded == 2
        assert j.stats.served == 1  # only the d1 hit counts


def test_lines_are_versioned_json(tmp_path):
    path = tmp_path / "j.jsonl"
    with RunJournal(path) as j:
        j.record("abc", {"x": 1})
    (line,) = path.read_text().splitlines()
    entry = json.loads(line)
    assert entry == {"v": JOURNAL_VERSION, "key": "abc", "payload": {"x": 1}}


def test_record_idempotent_per_digest(tmp_path):
    path = tmp_path / "j.jsonl"
    with RunJournal(path) as j:
        j.record("d", {"x": 1})
        j.record("d", {"x": 999})  # second write is a no-op
    assert len(path.read_text().splitlines()) == 1
    with RunJournal(path) as j:
        assert j.get("d") == {"x": 1}


def test_reopen_resumes_from_file(tmp_path):
    path = tmp_path / "j.jsonl"
    with RunJournal(path) as j:
        j.record("d1", {"x": 1})
        j.record("d2", {"x": 2})
    j2 = RunJournal(path)
    assert j2.stats.loaded == 2
    assert j2.get("d2") == {"x": 2}
    j2.record("d3", {"x": 3})
    j2.close()
    assert RunJournal(path).stats.loaded == 3


def test_truncated_final_line_skipped(tmp_path):
    """A kill -9 mid-append leaves a half line; the survivors load."""
    path = tmp_path / "j.jsonl"
    with RunJournal(path) as j:
        j.record("d1", {"x": 1})
        j.record("d2", {"x": 2})
    raw = path.read_text()
    path.write_text(raw[: len(raw) - 17])  # chop into the last payload
    j = RunJournal(path)
    assert j.stats.loaded == 1
    assert j.stats.corrupt_lines == 1
    assert j.get("d1") == {"x": 1}
    assert j.get("d2") is None
    # The resumed journal can re-record the lost run.
    j.record("d2", {"x": 2})
    j.close()
    j2 = RunJournal(path)
    assert j2.stats.loaded == 2 and j2.stats.corrupt_lines == 1


def test_malformed_entries_counted_not_raised(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text(
        'not json at all\n'
        '{"v": 1, "key": 42, "payload": {}}\n'        # key not a string
        '{"v": 1, "key": "ok", "payload": [1, 2]}\n'  # payload not a dict
        '{"v": 1, "key": "good", "payload": {"x": 1}}\n'
        '\n'
    )
    j = RunJournal(path)
    assert j.stats.loaded == 1
    assert j.stats.corrupt_lines == 3
    assert j.get("good") == {"x": 1}


def test_missing_file_starts_empty(tmp_path):
    j = RunJournal(tmp_path / "fresh.jsonl")
    assert len(j) == 0 and j.stats.loaded == 0
    j.close()


def test_describe_mentions_counts(tmp_path):
    with RunJournal(tmp_path / "j.jsonl") as j:
        j.record("d", {})
        assert "1 recorded" in j.stats.describe()
