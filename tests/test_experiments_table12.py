"""Tests for the Figure 12 table assembly (on a reduced workload)."""

import pytest

from repro.experiments.figures import sweep
from repro.experiments.table12 import render_table12, table12, table12_row
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster


def _small(name="small"):
    """A 4×4 processor grid (like the paper) so interior ranks exist and
    the interior-processor theory applies; reduced depth for speed."""
    return StencilWorkload(
        name, IterationSpace.from_extents([16, 16, 1024]),
        sqrt_kernel_3d(), (4, 4, 1), 2,
    )


@pytest.fixture(scope="module")
def row():
    w = _small()
    m = pentium_cluster()
    sr = sweep(w, m, heights=[16, 64, 128, 256])
    return table12_row(w, m, sr)


class TestTable12Row:
    def test_v_optimal_from_sweep(self, row):
        assert row.v_optimal in (16, 64, 128, 256)

    def test_grain_and_packet(self, row):
        assert row.grain_optimal == 16 * row.v_optimal
        assert row.packet_bytes == 4 * row.v_optimal * 4

    def test_improvement_in_sane_band(self, row):
        assert 0.05 < row.improvement < 0.6

    def test_theory_close_to_simulation(self, row):
        """The paper reports 2.5–12 % gaps; allow a wider but bounded band."""
        assert row.sim_vs_theory < 0.30

    def test_fill_time_positive(self, row):
        assert row.t_fill_mpi_buffer > 0
        assert row.steps_paper_approx > 0

    def test_overlap_beats_nonoverlap(self, row):
        assert row.t_overlap_sim < row.t_nonoverlap_sim


class TestTable12Assembly:
    def test_multiple_rows_and_render(self):
        w1, w2 = _small("a"), _small("b")
        m = pentium_cluster()
        sweeps = [sweep(w, m, heights=[64, 128]) for w in (w1, w2)]
        rows = table12(workloads=[w1, w2], machine=m, sweeps=sweeps)
        assert [r.workload_name for r in rows] == ["a", "b"]
        text = render_table12(rows)
        assert "V_optimal" in text
        assert "improvement" in text
        assert "a" in text and "b" in text

    def test_sweep_alignment_checked(self):
        w = _small()
        m = pentium_cluster()
        with pytest.raises(ValueError):
            table12([w], m, sweeps=[])
