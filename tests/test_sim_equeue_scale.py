"""Satellite regression: CalendarQueue statistics stay *exact* at scale.

The calendar queue's bucket width is re-estimated from the mean
time-advancing pop gap.  That statistic used to be a float running
average (an EMA), which compounds one rounding error per pop and lets a
short burst of tight timers mis-size the width for the rest of a run.
It is now two endpoint timestamps plus one integer counter — consecutive
gaps telescope, so ``(last - first) / advances`` IS the mean positive
gap, bit-exactly, however many events pass through.

This test drives >10M queue operations through a deterministic schedule
with bursty phases (tight timer storms alternating with wide idle gaps —
the EMA's failure mode) and asserts, against an independent
reimplementation kept in plain Python ints/floats:

* every pop leaves in exact ``(time, seq)`` order (the simulator's
  bit-identity contract),
* the advancing-pop counter and both endpoint timestamps match exactly,
* the derived mean gap matches to the last bit (``==``, not approx).
"""

from __future__ import annotations

import pytest

from repro.sim.equeue import CalendarQueue

# Deterministic gap table (seconds).  Mixes simultaneity (0.0), tight
# timer gaps and wide idle gaps; indexed by a rolling counter, so every
# phase of the run sees the same distribution without any RNG.
_GAPS = (
    0.0, 1e-6, 3e-6, 0.0, 7e-6, 2.5e-7, 1e-5, 5e-6,
    0.0, 4e-4, 1.25e-7, 0.0, 9e-6, 2e-6, 6e-3, 8e-7,
)


@pytest.mark.slow
def test_calendar_gap_stats_exact_beyond_ten_million_events():
    q = CalendarQueue()
    push = q.push
    pop = q.pop

    pending = 4096        # cluster-scale steady-state population
    steady_rounds = 5_100_000

    seq = 0
    now = 0.0
    for _ in range(pending):
        push((now + _GAPS[seq & 15], seq, None, None))
        seq += 1

    # Independent statistics (plain int/float, no queue internals).
    my_first = None
    my_last = 0.0
    my_adv = 0
    prev_t = -1.0
    prev_s = -1
    ops = pending

    # Steady state: one push + one pop per round keeps the population
    # constant while times sweep forward through many year advances and
    # (with the bursty gap table) several re-buckets.
    for _ in range(steady_rounds):
        t, s, _fn, _arg = pop()
        # Exact (time, seq) order: the stream is strictly increasing.
        assert t > prev_t or (t == prev_t and s > prev_s)
        prev_t = t
        prev_s = s
        if my_first is None:
            my_first = my_last = t
        elif t > my_last:
            my_adv += 1
            my_last = t
        now = t
        push((now + _GAPS[seq & 15], seq, None, None))
        seq += 1
        ops += 2

    # Drain.
    while q:
        t, s, _fn, _arg = pop()
        assert t > prev_t or (t == prev_t and s > prev_s)
        prev_t = t
        prev_s = s
        if t > my_last:
            my_adv += 1
            my_last = t
        ops += 1

    assert ops > 10_000_000

    # The queue's gap statistics must match the reimplementation
    # *bit-exactly* — an EMA drifts off after this many events, the
    # telescoped endpoints + integer counter cannot.
    assert q._adv == my_adv
    assert q._first_t == my_first
    assert q._last_t == my_last
    assert q._gap_mean == (my_last - my_first) / my_adv

    # Sanity on the structure the statistics feed: the width was sized
    # (bootstrap left) and the bursty phases forced at least one resize.
    assert q.width > 0.0
    assert q.resizes >= 1
    assert len(q) == 0
