"""Multichannel DMA (the §6 SCI future work) and the sci_cluster preset."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import Machine, pentium_cluster, sci_cluster
from repro.runtime.executor import run_tiled
from repro.sim.core import Simulator
from repro.sim.mpi import World
from repro.sim.resources import FifoResource


class TestMultiServerResource:
    def test_two_servers_run_in_parallel(self):
        sim = Simulator()
        r = FifoResource(sim, "dma", servers=2)
        done = []
        r.submit(3.0).add_callback(done.append)
        r.submit(3.0).add_callback(done.append)
        r.submit(3.0).add_callback(done.append)
        sim.run()
        assert done[0] == (0.0, 3.0)
        assert done[1] == (0.0, 3.0)
        assert done[2] == (3.0, 6.0)

    def test_earliest_free_server_chosen(self):
        sim = Simulator()
        r = FifoResource(sim, "dma", servers=2)
        ends = []
        r.submit(5.0).add_callback(lambda i: ends.append(i[1]))
        r.submit(1.0).add_callback(lambda i: ends.append(i[1]))
        r.submit(1.0).add_callback(lambda i: ends.append(i[1]))
        sim.run()
        # Third job lands on server 2 (free at 1.0), not server 1 (5.0).
        assert sorted(ends) == [1.0, 2.0, 5.0]

    def test_utilization_is_per_aggregate_capacity(self):
        sim = Simulator()
        r = FifoResource(sim, "dma", servers=2)
        r.submit(4.0)
        r.submit(4.0)
        sim.run()
        assert r.utilization(4.0) == pytest.approx(1.0)
        assert r.utilization(8.0) == pytest.approx(0.5)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FifoResource(sim, "x", servers=0)


class TestMachineChannels:
    def test_machine_validates_channels(self):
        with pytest.raises(ValueError):
            Machine(t_c=1e-6, t_s=0, t_t=0, dma_channels=0)

    def test_sci_preset(self):
        m = sci_cluster()
        assert m.dma_channels == 2
        assert m.t_s < pentium_cluster().t_s
        assert m.t_t < pentium_cluster().t_t


class TestMultichannelSpeedup:
    def _run(self, machine):
        w = StencilWorkload(
            "mc", IterationSpace.from_extents([12, 12, 1024]),
            sqrt_kernel_3d(), (3, 3, 1), 2,
        )
        return run_tiled(w, 64, machine, blocking=False).completion_time

    def test_second_dma_channel_never_hurts(self):
        base = pentium_cluster()
        one = self._run(base.with_(dma_channels=1))
        two = self._run(base.with_(dma_channels=2))
        assert two <= one + 1e-12

    def test_second_channel_helps_when_dma_bound(self):
        """Make kernel copies expensive so the DMA engine is the
        bottleneck; a second channel then shortens the run."""
        heavy = pentium_cluster().with_(fill_kernel_per_byte=2e-6)
        one = self._run(heavy.with_(dma_channels=1))
        two = self._run(heavy.with_(dma_channels=2))
        assert two < one * 0.95

    def test_sci_is_much_faster_than_fastethernet(self):
        """The §6 projection: user-level SCI messaging with 2-channel DMA
        removes most of the communication overhead."""
        t_pentium = self._run(pentium_cluster())
        t_sci = self._run(sci_cluster())
        assert t_sci < t_pentium * 0.8


class TestNonOvertaking:
    def test_small_message_cannot_overtake_large_on_multichannel_dma(self):
        """Regression: with 2 DMA channels a small message's kernel copy
        finishes long before a preceding huge one's; FIFO matching must
        still deliver them in send order (MPI non-overtaking)."""
        m = Machine(
            t_c=1.0, t_s=0.0, t_t=1e-6,
            fill_kernel_per_byte=1e-3,  # 10 s copy for the big message
            fill_mpi_per_byte=0.0,
            dma=True, dma_channels=2,
        )
        w = World(m, 2)
        got = []

        def sender(ctx):
            yield ctx.isend(1, 10_000, payload="big-first")
            yield ctx.isend(1, 10, payload="small-second")

        def receiver(ctx):
            got.append((yield ctx.recv(0, 10_000)))
            got.append((yield ctx.recv(0, 10)))

        w.run([sender, receiver])
        assert got == ["big-first", "small-second"]

    def test_different_tags_may_pass_each_other(self):
        """Ordering is per (src, dst, tag): a small message on another tag
        is free to arrive first."""
        m = Machine(
            t_c=1.0, t_s=0.0, t_t=1e-6,
            fill_kernel_per_byte=1e-3,
            dma=True, dma_channels=2,
        )
        w = World(m, 2)
        arrival_times = {}

        def sender(ctx):
            yield ctx.isend(1, 10_000, payload="big", tag=0)
            yield ctx.isend(1, 10, payload="small", tag=1)

        def receiver(ctx):
            yield ctx.recv(0, 10, tag=1)
            arrival_times["small"] = ctx.world.sim.now
            yield ctx.recv(0, 10_000, tag=0)
            arrival_times["big"] = ctx.world.sim.now

        w.run([sender, receiver])
        assert arrival_times["small"] < arrival_times["big"]
