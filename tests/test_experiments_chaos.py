"""Chaos campaigns: bit-exactness under faults, determinism, fan-out."""

import pytest

from repro.experiments.cache import SimCache, run_key
from repro.experiments.chaos import (
    chaos_payload,
    chaos_spec,
    chaos_sweep,
    default_retransmit_timeout,
    render_chaos,
)
from repro.experiments.engine import Engine
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import default_watchdog, run_tiled_robust
from repro.sim.faults import FaultPlan
from repro.sim.reliable import ReliableConfig


def _workload(depth=32):
    return StencilWorkload(
        "chaos-test", IterationSpace.from_extents([8, 8, depth]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


class TestRobustExecutor:
    def test_default_watchdog_scales_with_protocol(self):
        w = _workload()
        m = pentium_cluster()
        base = default_watchdog(w, 8, m)
        cfg = ReliableConfig(timeout=1e-2, max_retries=4)
        with_arq = default_watchdog(w, 8, m, reliable=cfg)
        assert with_arq.stall_time > base.stall_time
        assert with_arq.stall_time > cfg.worst_case_wait

    def test_robust_matches_plain_on_clean_network(self):
        from repro.runtime.executor import run_tiled

        w = _workload()
        m = pentium_cluster()
        plain = run_tiled(w, 8, m, blocking=False)
        robust = run_tiled_robust(w, 8, m, blocking=False)
        assert robust.status == "completed"
        assert robust.completion_time == pytest.approx(plain.completion_time)

    def test_faulted_run_recovers_bit_identically(self):
        import numpy as np

        from repro.runtime.executor import run_tiled

        w = _workload()
        m = pentium_cluster()
        golden = run_tiled(w, 8, m, blocking=False, numeric=True)
        res = run_tiled_robust(
            w, 8, m, blocking=False,
            faults=FaultPlan(seed=5, drop_prob=0.05),
            reliable=ReliableConfig(
                timeout=default_retransmit_timeout(w, 8, m)
            ),
            numeric=True,
        )
        assert res.status == "degraded"
        assert res.outcome.retransmits > 0
        assert np.array_equal(res.result, golden.result)

    def test_unrecovered_drop_returns_structured_deadlock(self):
        w = _workload()
        m = pentium_cluster()
        res = run_tiled_robust(
            w, 8, m, blocking=False,
            faults=FaultPlan(seed=5, drop_prob=0.05),
            numeric=True,
        )
        assert res.status == "deadlocked"
        assert res.result is None
        assert res.outcome.report is not None
        assert res.outcome.report.blocked


class TestChaosPayload:
    def test_payload_digest_stable(self):
        w = _workload()
        m = pentium_cluster()
        spec = chaos_spec(blocking=False)
        a = chaos_payload(w, 8, m, spec)
        b = chaos_payload(w, 8, m, spec)
        assert a == b
        assert a["status"] == "completed"
        assert a["result_digest"]

    def test_spec_is_json_pure(self):
        import json

        spec = chaos_spec(
            blocking=True,
            faults=FaultPlan(seed=1, drop_prob=0.1),
            reliable=ReliableConfig(),
        )
        assert json.loads(json.dumps(spec)) == spec


class TestChaosSweep:
    def test_sweep_completes_bit_identical(self):
        report = chaos_sweep(
            _workload(), 8, pentium_cluster(),
            seed=1, drop_rates=(0.0, 0.05),
        )
        assert report.all_safe
        assert len(report.points) == 4
        for p in report.points:
            assert p.completed
            assert p.bit_identical
        text = render_chaos(report)
        assert "bit-identical" in text

    def test_sweep_deterministic_across_calls(self):
        kwargs = dict(seed=3, drop_rates=(0.02,), duplicate_rate=0.05)
        a = chaos_sweep(_workload(), 8, pentium_cluster(), **kwargs)
        b = chaos_sweep(_workload(), 8, pentium_cluster(), **kwargs)
        assert a == b

    def test_no_retransmit_deadlocks_not_hangs(self):
        report = chaos_sweep(
            _workload(), 8, pentium_cluster(),
            seed=1, drop_rates=(0.05,), retransmit=False,
        )
        for p in report.points:
            assert p.status == "deadlocked"
            assert p.bit_identical is None
        assert report.all_safe  # vacuously: no completed faulted runs

    def test_inflation_relative_to_schedule_golden(self):
        report = chaos_sweep(
            _workload(), 8, pentium_cluster(),
            seed=1, drop_rates=(0.0,),
        )
        for p in report.points:
            assert report.inflation(p) == pytest.approx(1.0)


class TestEngineChaosBatch:
    def test_cache_round_trip(self, tmp_path):
        w = _workload()
        m = pentium_cluster()
        cache = SimCache(tmp_path / "cache")
        engine = Engine(jobs=1, cache=cache)
        specs = [chaos_spec(blocking=False)]
        first = engine.run_chaos_batch(w, 8, m, specs)
        assert cache.stats.stores == 1
        again = engine.run_chaos_batch(w, 8, m, specs)
        assert cache.stats.hits == 1
        assert first == again

    def test_chaos_key_distinct_from_clean_key(self):
        w = _workload()
        m = pentium_cluster()
        spec = chaos_spec(blocking=False)
        clean = run_key(w, 8, m, blocking=False)
        chaotic = run_key(w, 8, m, blocking=False, method="chaos1",
                          extra=spec)
        assert clean != chaotic
        # Omitted extra leaves the pre-existing key intact.
        assert run_key(w, 8, m, blocking=False, extra=None) == clean

    @pytest.mark.chaos
    def test_pool_matches_serial(self, tmp_path):
        w = _workload()
        m = pentium_cluster()
        plan = FaultPlan(seed=9, drop_prob=0.05)
        cfg = ReliableConfig(timeout=default_retransmit_timeout(w, 8, m))
        specs = [
            chaos_spec(blocking=b, faults=plan, reliable=cfg)
            for b in (True, False)
        ]
        serial = Engine(jobs=1).run_chaos_batch(w, 8, m, specs)
        pooled = Engine(jobs=2).run_chaos_batch(w, 8, m, specs)
        assert serial == pooled

    @pytest.mark.chaos
    def test_sweep_through_pooled_engine_matches_serial(self, tmp_path):
        w = _workload()
        m = pentium_cluster()
        kwargs = dict(seed=1, drop_rates=(0.0, 0.05))
        serial = chaos_sweep(w, 8, m, **kwargs)
        pooled = chaos_sweep(w, 8, m, engine=Engine(jobs=2), **kwargs)
        assert serial == pooled
        assert pooled.all_safe
