"""Tests for crossover/sensitivity/continuous-optimum analysis."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload, paper_experiment_i
from repro.model.analysis import (
    continuous_optimum,
    cpu_comm_crossover,
    parameter_sensitivity,
    workload_step,
)
from repro.model.machine import pentium_cluster


def _w():
    return paper_experiment_i()


class TestWorkloadStep:
    def test_matches_figures_analytic_step(self):
        from repro.experiments.figures import analytic_step

        w, m = _w(), pentium_cluster()
        a = workload_step(w, m, 128)
        b = analytic_step(w, m, 128)
        assert a.cpu_side == pytest.approx(b.cpu_side)
        assert a.comm_side == pytest.approx(b.comm_side)

    def test_fractional_v(self):
        w, m = _w(), pentium_cluster()
        sc = workload_step(w, m, 100.5)
        assert sc.a2_compute == pytest.approx(16 * 100.5 * m.t_c)

    def test_validation(self):
        with pytest.raises(ValueError):
            workload_step(_w(), pentium_cluster(), 0)


class TestCrossover:
    def test_paper_machine_is_cpu_bound_everywhere(self):
        """The calibrated cluster is CPU-bound at every height, so the §4
        case split lands in case 1 for all V (no crossover)."""
        assert cpu_comm_crossover(_w(), pentium_cluster()) is None

    def test_wire_heavy_machine_has_crossover(self):
        """A machine whose fixed cost is CPU-heavy but whose per-byte cost
        is wire-heavy flips from case 1 to case 2 as V grows."""
        m = pentium_cluster().with_(fill_mpi_fraction=0.9, t_t=5e-7)
        v_cross = cpu_comm_crossover(_w(), m)
        assert v_cross is not None
        sc_lo = workload_step(_w(), m, max(1.0, v_cross / 4))
        sc_hi = workload_step(_w(), m, v_cross * 4)
        assert sc_lo.cpu_bound and not sc_hi.cpu_bound


class TestContinuousOptimum:
    def test_tracks_simulated_optimum(self):
        """The continuous model optimum must sit near the simulator's
        discrete one (Fig. 9: V_opt 192, t_opt 0.259)."""
        w, m = _w(), pentium_cluster()
        ovl = continuous_optimum(w, m, overlap=True)
        assert 100 < ovl.v_opt < 350
        assert ovl.t_opt == pytest.approx(0.259, rel=0.1)

    def test_overlap_beats_nonoverlap(self):
        w, m = _w(), pentium_cluster()
        ovl = continuous_optimum(w, m, overlap=True)
        non = continuous_optimum(w, m, overlap=False)
        assert ovl.t_opt < non.t_opt
        improvement = 1 - ovl.t_opt / non.t_opt
        assert 0.2 < improvement < 0.5

    def test_interior_optimum(self):
        w, m = _w(), pentium_cluster()
        res = continuous_optimum(w, m, overlap=True, lo=4.0, hi=4096.0)
        assert 4.0 < res.v_opt < 4096.0


class TestSensitivity:
    def test_startup_widens_advantage(self):
        s = parameter_sensitivity(_w(), pentium_cluster(), 128, parameter="t_s")
        assert s > 0

    def test_compute_cost_narrows_advantage(self):
        s = parameter_sensitivity(_w(), pentium_cluster(), 128, parameter="t_c")
        assert s < 0

    def test_wire_cost_widens_advantage(self):
        s = parameter_sensitivity(_w(), pentium_cluster(), 128, parameter="t_t")
        assert s > 0

    def test_rejects_non_float_parameter(self):
        with pytest.raises(ValueError):
            parameter_sensitivity(
                _w(), pentium_cluster(), 128, parameter="bytes_per_element"
            )


class TestSmallWorkload:
    def test_shallow_space(self):
        w = StencilWorkload(
            "small", IterationSpace.from_extents([8, 8, 256]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        m = pentium_cluster()
        res = continuous_optimum(w, m, overlap=True)
        assert res.t_opt > 0


class TestDegenerateMachines:
    """Crossover and continuous-optimum hardening: machines at the edges
    of the model (zero latency, comm-free, compute-starved) must return
    well-defined sentinels instead of solver artefacts."""

    def _w(self):
        return StencilWorkload(
            "degen", IterationSpace.from_extents([8, 8, 256]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )

    def test_zero_latency_machine(self):
        m = pentium_cluster().with_(t_s=0.0)
        w = self._w()
        cross = cpu_comm_crossover(w, m, lo=4.0, hi=64.0)
        assert cross is None or 4.0 <= cross <= 64.0
        res = continuous_optimum(w, m, overlap=True, lo=4.0, hi=64.0)
        assert 4.0 <= res.v_opt <= 64.0 and res.t_opt > 0

    def test_comm_free_machine_has_no_crossover(self):
        m = pentium_cluster().with_(t_s=0.0, t_t=0.0)
        w = self._w()
        # comm side is identically zero: CPU dominates everywhere.
        assert cpu_comm_crossover(w, m, lo=4.0, hi=64.0) is None
        res = continuous_optimum(w, m, overlap=True, lo=4.0, hi=64.0)
        assert 4.0 <= res.v_opt <= 64.0 and res.t_opt > 0
        assert isinstance(res.flat, bool)

    def test_compute_starved_machine_has_no_crossover(self):
        # Machine requires t_c > 0; 1e-30 is compute-free for all
        # practical purposes, so communication dominates everywhere.
        m = pentium_cluster().with_(t_c=1e-30)
        w = self._w()
        assert cpu_comm_crossover(w, m, lo=4.0, hi=64.0) is None
        res = continuous_optimum(w, m, overlap=True, lo=4.0, hi=64.0)
        assert 4.0 <= res.v_opt <= 64.0 and res.t_opt > 0

    def test_crossover_rejects_empty_bracket(self):
        w = self._w()
        with pytest.raises(ValueError, match="hi must exceed lo"):
            cpu_comm_crossover(w, pentium_cluster(), lo=64.0, hi=64.0)
        with pytest.raises(ValueError, match="hi must exceed lo"):
            continuous_optimum(w, pentium_cluster(), overlap=True,
                               lo=64.0, hi=4.0)

    def test_endpoint_snap_on_monotone_curve(self):
        # Over a bracket past the optimum the curve is monotone
        # increasing; bounded Brent alone would park near-but-not-at the
        # endpoint, the snap must return the exact bound.
        w = self._w()
        m = pentium_cluster()
        ref = continuous_optimum(w, m, overlap=True, lo=4.0, hi=64.0)
        hi_bracket = continuous_optimum(
            w, m, overlap=True, lo=2 * ref.v_opt, hi=4 * ref.v_opt
        )
        assert hi_bracket.v_opt == 2 * ref.v_opt
