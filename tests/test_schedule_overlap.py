"""Tests for the overlapping schedule (paper §4) and its non-overlapping
counterpart (§3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.ir.loopnest import IterationSpace
from repro.schedule.mapping import ProcessorMapping
from repro.schedule.nonoverlap import NonoverlapSchedule
from repro.schedule.overlap import OverlapSchedule, overlap_pi
from repro.tiling.tiledspace import tile_space
from repro.tiling.transform import rectangular_tiling
from repro.uetuct.grid import uet_uct_optimal_makespan


def _tiled(extents, sides):
    return tile_space(IterationSpace.from_extents(extents), rectangular_tiling(sides))


UNIT3 = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
UNIT2 = DependenceSet([(1, 0), (0, 1), (1, 1)])


class TestOverlapPi:
    def test_coefficients(self):
        assert overlap_pi(3, 2) == (2, 2, 1)
        assert overlap_pi(3, 0) == (1, 2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            overlap_pi(3, 3)


class TestNonoverlapSchedule:
    def test_pi_is_all_ones(self):
        ts = _tiled([8, 8, 64], [4, 4, 8])
        s = NonoverlapSchedule(ts, UNIT3)
        assert s.pi == (1, 1, 1)

    def test_steps(self):
        ts = _tiled([8, 8, 64], [4, 4, 8])  # tiled extents (2,2,8)
        s = NonoverlapSchedule(ts, UNIT3)
        assert s.num_steps == 1 + 1 + 7 + 1 == 10
        assert s.step_of((0, 0, 0)) == 0
        assert s.step_of((1, 1, 7)) == 9

    def test_default_mapping_largest_dim(self):
        ts = _tiled([8, 8, 64], [4, 4, 8])
        s = NonoverlapSchedule(ts, UNIT3)
        assert s.mapped_dim == 2

    def test_rejects_non_unitary(self):
        ts = _tiled([8, 8], [4, 4])
        with pytest.raises(ValueError, match="unitary"):
            NonoverlapSchedule(ts, DependenceSet([(2, 0), (0, 1)]))

    def test_is_valid(self):
        ts = _tiled([8, 8], [4, 4])
        s = NonoverlapSchedule(ts, DependenceSet([(1, 0), (0, 1)]))
        assert s.is_valid()


class TestOverlapSchedule:
    def test_example3_schedule_length(self):
        """Π = (1,2) over 1000×100 tiles → P = 999 + 2·99 + 1 = 1198."""
        ts = _tiled([10000, 1000], [10, 10])
        s = OverlapSchedule(ts, DependenceSet([(1, 0), (0, 1), (1, 1)]),
                            ProcessorMapping(ts, mapped_dim=0))
        assert s.pi == (1, 2)
        assert s.num_steps == 1198

    def test_step_formula(self):
        ts = _tiled([8, 8, 64], [4, 4, 8])
        s = OverlapSchedule(ts, UNIT3)
        assert s.mapped_dim == 2
        # t = 2 j1 + 2 j2 + j3
        assert s.step_of((1, 1, 3)) == 2 + 2 + 3
        assert s.num_steps == 2 * 1 + 2 * 1 + 7 + 1

    def test_matches_uet_uct_optimum(self):
        """The overlap schedule length equals the provably optimal UET-UCT
        makespan of the corresponding grid graph."""
        for extents, sides in [
            ([8, 8, 64], [4, 4, 8]),
            ([6, 12], [2, 2]),
            ([9, 9, 9], [3, 3, 1]),
        ]:
            ts = _tiled(extents, sides)
            s = OverlapSchedule(ts, DependenceSet(
                [tuple(int(i == k) for i in range(len(extents)))
                 for k in range(len(extents))]
            ))
            assert s.num_steps == uet_uct_optimal_makespan(ts.normalized_upper())

    def test_validity_cross_processor_needs_two_steps(self):
        ts = _tiled([8, 8], [4, 4])
        s = OverlapSchedule(ts, UNIT2, ProcessorMapping(ts, mapped_dim=0))
        assert s.is_valid()
        # Cross-processor dependence (0,1): Π·d = 2 ✓; local (1,0): Π·d = 1 ✓.

    def test_rejects_non_unitary(self):
        ts = _tiled([8, 8], [4, 4])
        with pytest.raises(ValueError, match="unitary"):
            OverlapSchedule(ts, DependenceSet([(0, 2), (1, 0)]))

    def test_str(self):
        ts = _tiled([8, 8], [4, 4])
        s = OverlapSchedule(ts, DependenceSet([(1, 0), (0, 1)]))
        assert "OverlapSchedule" in str(s)


class TestSchedulesCompared:
    def test_overlap_has_more_steps_but_each_is_cheaper(self):
        """P_ov >= P_non always (the doubled coefficients stretch the
        hyperplane range); the win comes from cheaper steps."""
        for extents, sides in [([8, 8, 64], [4, 4, 8]), ([16, 4], [4, 4])]:
            ts = _tiled(extents, sides)
            unit = DependenceSet(
                [tuple(int(i == k) for i in range(len(extents)))
                 for k in range(len(extents))]
            )
            non = NonoverlapSchedule(ts, unit)
            ovl = OverlapSchedule(ts, unit)
            assert ovl.num_steps >= non.num_steps

    @given(st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 12)))
    @settings(max_examples=40, deadline=None)
    def test_both_schedules_execute_every_tile_once(self, tiled_extents):
        sides = (2, 2, 2)
        extents = [e * s for e, s in zip(tiled_extents, sides)]
        ts = _tiled(extents, list(sides))
        unit = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        for sched in (NonoverlapSchedule(ts, unit), OverlapSchedule(ts, unit)):
            steps = [sched.step_of(t) for t in ts.tiles()]
            assert min(steps) == 0
            assert max(steps) == sched.num_steps - 1
            # No two tiles of the same processor share a step.
            seen = set()
            for t in ts.tiles():
                key = (sched.mapping.rank_of_tile(t), sched.step_of(t))
                assert key not in seen
                seen.add(key)
