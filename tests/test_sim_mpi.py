"""Tests for the MPI-like primitives: timing semantics, matching, payloads."""

import numpy as np
import pytest

from repro.model.machine import Machine
from repro.sim.deadlock import diagnose
from repro.sim.mpi import World


def _machine(**kw):
    """Round numbers so hand-computed timings stay readable:
    fill_MPI = 1 s, fill_kernel = 1 s, wire = 1 s per 1000 bytes."""
    defaults = dict(
        t_c=1.0,
        t_s=2.0,
        t_t=1e-3,
        fill_mpi_fraction=0.5,
        dma=True,
        duplex=True,
        network_latency=0.0,
    )
    defaults.update(kw)
    return Machine(**defaults)


class TestIsendIrecvTiming:
    def test_pipeline_stages(self):
        """isend at t=0: A1 (1s CPU) → B3 (1s DMA) → TX (1s) → RX (1s) →
        B2 (1s DMA) → delivered at t=5; receiver's wait returns then."""
        w = World(_machine(), 2)
        send_resumed = []
        recv_done = []

        def sender(ctx):
            req = yield ctx.isend(1, 1000)
            send_resumed.append(ctx.world.sim.now)
            yield ctx.wait(req)
            send_resumed.append(ctx.world.sim.now)

        def receiver(ctx):
            req = yield ctx.irecv(0, 1000)
            yield ctx.wait(req)
            recv_done.append(ctx.world.sim.now)

        w.run([sender, receiver])
        assert send_resumed[0] == pytest.approx(1.0)  # after A1
        assert send_resumed[1] == pytest.approx(2.0)  # B3 done: buffer free
        assert recv_done[0] == pytest.approx(5.0)

    def test_compute_overlaps_communication(self):
        """The whole point of the paper: compute during the B-chain."""
        w = World(_machine(), 2)
        finish = {}

        def sender(ctx):
            req = yield ctx.isend(1, 1000)
            yield ctx.compute_seconds(10.0)
            yield ctx.wait(req)
            finish["s"] = ctx.world.sim.now

        def receiver(ctx):
            req = yield ctx.irecv(0, 1000)
            yield ctx.compute_seconds(10.0)
            yield ctx.wait(req)
            finish["r"] = ctx.world.sim.now

        w.run([sender, receiver])
        # Sender: A1 (1) + compute (10); send completed long before.
        assert finish["s"] == pytest.approx(11.0)
        # Receiver: A3 (1) + compute (10) = 11 > delivery at 5.
        assert finish["r"] == pytest.approx(11.0)

    def test_blocking_send_holds_cpu_until_transmitted(self):
        w = World(_machine(), 2)
        t = {}

        def sender(ctx):
            yield ctx.send(1, 1000)
            t["sent"] = ctx.world.sim.now

        def receiver(ctx):
            data = yield ctx.recv(0, 1000)
            t["recv"] = ctx.world.sim.now

        w.run([sender, receiver])
        # A1 (1) + B3 (1) + TX (1) = 3.
        assert t["sent"] == pytest.approx(3.0)
        # Delivery: + RX (1) + B2 (1) = 5.
        assert t["recv"] == pytest.approx(5.0)

    def test_blocking_recv_blocks_until_delivery(self):
        w = World(_machine(), 2)
        t = {}

        def sender(ctx):
            yield ctx.compute_seconds(7.0)
            yield ctx.send(1, 1000)

        def receiver(ctx):
            yield ctx.recv(0, 1000)
            t["recv"] = ctx.world.sim.now

        w.run([sender, receiver])
        # Sender starts at 7: +A1+B3+TX+RX+B2 → delivery at 12.
        assert t["recv"] == pytest.approx(12.0)

    def test_message_arriving_before_post_is_buffered(self):
        w = World(_machine(), 2)
        t = {}

        def sender(ctx):
            yield ctx.isend(1, 1000)

        def receiver(ctx):
            yield ctx.compute_seconds(100.0)
            data = yield ctx.recv(0, 1000)
            t["recv"] = ctx.world.sim.now

        w.run([sender, receiver])
        # Message delivered at 5, receiver asks at 101 (after A3): immediate.
        assert t["recv"] == pytest.approx(101.0)


class TestNoDma:
    def test_kernel_copies_charge_cpu(self):
        """dma=False: B3 extends the isend CPU charge, B2 is paid in wait."""
        w = World(_machine(dma=False), 2)
        t = {}

        def sender(ctx):
            req = yield ctx.isend(1, 1000)
            t["after_isend"] = ctx.world.sim.now
            yield ctx.wait(req)

        def receiver(ctx):
            req = yield ctx.irecv(0, 1000)
            t["after_irecv"] = ctx.world.sim.now
            yield ctx.wait(req)
            t["after_wait"] = ctx.world.sim.now

        w.run([sender, receiver])
        assert t["after_isend"] == pytest.approx(2.0)  # A1 + B3 on CPU
        assert t["after_irecv"] == pytest.approx(1.0)  # A3 only
        # Chain: send CPU 2 + TX 1 + RX 1 → arrival 4; B2 on CPU in wait: 5.
        assert t["after_wait"] == pytest.approx(5.0)

    def test_b2_paid_once_across_waits(self):
        w = World(_machine(dma=False), 2)
        t = {}

        def sender(ctx):
            yield ctx.isend(1, 1000)

        def receiver(ctx):
            req = yield ctx.irecv(0, 1000)
            yield ctx.wait(req)
            t1 = ctx.world.sim.now
            yield ctx.wait(req)
            t["delta"] = ctx.world.sim.now - t1

        w.run([sender, receiver])
        assert t["delta"] == pytest.approx(0.0)


class TestMatching:
    def test_fifo_non_overtaking(self):
        w = World(_machine(), 2)
        got = []

        def sender(ctx):
            yield ctx.isend(1, 10, payload="first")
            yield ctx.isend(1, 10, payload="second")

        def receiver(ctx):
            a = yield ctx.recv(0, 10)
            b = yield ctx.recv(0, 10)
            got.extend([a, b])

        w.run([sender, receiver])
        assert got == ["first", "second"]

    def test_tags_separate_streams(self):
        w = World(_machine(), 2)
        got = []

        def sender(ctx):
            yield ctx.isend(1, 10, payload="t1", tag=1)
            yield ctx.isend(1, 10, payload="t0", tag=0)

        def receiver(ctx):
            a = yield ctx.recv(0, 10, tag=0)
            b = yield ctx.recv(0, 10, tag=1)
            got.extend([a, b])

        w.run([sender, receiver])
        assert got == ["t0", "t1"]

    def test_sources_separate_streams(self):
        w = World(_machine(), 3)
        got = []

        def s0(ctx):
            yield ctx.isend(2, 10, payload="from0")

        def s1(ctx):
            yield ctx.isend(2, 10, payload="from1")

        def receiver(ctx):
            a = yield ctx.recv(1, 10)
            b = yield ctx.recv(0, 10)
            got.extend([a, b])

        w.run([s0, s1, receiver])
        assert got == ["from1", "from0"]

    def test_waitall_returns_aligned_payloads(self):
        w = World(_machine(), 2)
        got = []

        def sender(ctx):
            r1 = yield ctx.isend(1, 10, payload="x")
            r2 = yield ctx.isend(1, 10, payload="y")
            yield ctx.waitall([r1, r2])

        def receiver(ctx):
            ra = yield ctx.irecv(0, 10)
            rb = yield ctx.irecv(0, 10)
            vals = yield ctx.waitall([ra, rb])
            got.append(vals)

        w.run([sender, receiver])
        assert got == [["x", "y"]]


class TestPayloads:
    def test_numpy_payload_copied_at_send(self):
        w = World(_machine(), 2)
        got = []

        def sender(ctx):
            data = np.array([1.0, 2.0])
            yield ctx.isend(1, 10, payload=data)
            data[0] = 99.0  # mutation after isend must not be visible

        def receiver(ctx):
            got.append((yield ctx.recv(0, 10)))

        w.run([sender, receiver])
        assert got[0][0] == 1.0

    def test_deepcopy_for_plain_objects(self):
        w = World(_machine(), 2)
        got = []

        def sender(ctx):
            data = {"k": [1, 2]}
            yield ctx.isend(1, 10, payload=data)
            data["k"].append(3)

        def receiver(ctx):
            got.append((yield ctx.recv(0, 10)))

        w.run([sender, receiver])
        assert got[0] == {"k": [1, 2]}


class TestBarrierAndErrors:
    def test_barrier_synchronises(self):
        w = World(_machine(), 3)
        times = []

        def prog(delay):
            def program(ctx):
                yield ctx.compute_seconds(delay)
                yield ctx.barrier()
                times.append(ctx.world.sim.now)

            return program

        w.run([prog(1.0), prog(5.0), prog(3.0)])
        assert times == [pytest.approx(5.0)] * 3

    def test_deadlock_raises_and_diagnoses(self):
        w = World(_machine(), 2)

        def p0(ctx):
            yield ctx.recv(1, 10)

        def p1(ctx):
            yield ctx.recv(0, 10)

        with pytest.raises(RuntimeError, match="deadlock"):
            w.run([p0, p1])
        report = diagnose(w)
        assert report.is_deadlocked
        assert len(report.blocked) == 2
        assert "recv" in report.describe()

    def test_bad_destination(self):
        w = World(_machine(), 2)

        def p0(ctx):
            yield ctx.isend(5, 10)

        def idle(ctx):
            yield ctx.compute_seconds(0.0)

        with pytest.raises(ValueError):
            w.run([p0, idle])

    def test_program_count_mismatch(self):
        w = World(_machine(), 2)
        with pytest.raises(ValueError):
            w.run([lambda ctx: iter(())])

    def test_wait_on_non_request(self):
        w = World(_machine(), 1)

        def p0(ctx):
            yield ctx.wait("nope")

        with pytest.raises(TypeError):
            w.run([p0])

    def test_context_validation(self):
        w = World(_machine(), 1)
        with pytest.raises(ValueError):
            w.context(3)
        with pytest.raises(ValueError):
            World(_machine(), 0)


class TestTracing:
    def test_trace_kinds_recorded(self):
        w = World(_machine(), 2, trace=True)

        def sender(ctx):
            req = yield ctx.isend(1, 1000)
            yield ctx.compute_seconds(2.0)
            yield ctx.wait(req)

        def receiver(ctx):
            yield ctx.recv(0, 1000)

        w.run([sender, receiver])
        kinds0 = {r.kind for r in w.trace.for_rank(0)}
        kinds1 = {r.kind for r in w.trace.for_rank(1)}
        assert "fill_mpi_send" in kinds0 and "compute" in kinds0
        assert "fill_mpi_recv" in kinds1 and "blocked_recv" in kinds1

    def test_busy_time_excludes_blocked(self):
        w = World(_machine(), 2, trace=True)

        def sender(ctx):
            yield ctx.compute_seconds(10.0)
            yield ctx.send(1, 1000)

        def receiver(ctx):
            yield ctx.recv(0, 1000)

        w.run([sender, receiver])
        # Receiver CPU busy: A3 only (1 s); blocked the rest.
        assert w.trace.busy_time(1) == pytest.approx(1.0)
