"""General-H shape optimisation must beat or match the rectangular
closed form and always return legal tilings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.tiling.communication import communication_fraction
from repro.tiling.optimize_h import optimize_general_tiling
from repro.tiling.shape import (
    continuous_optimal_sides,
    rectangular_communication_volume,
)


class TestOrthantCase:
    def test_matches_rectangular_closed_form(self):
        """With D = unit vectors the optimum is the rectangular square."""
        deps = DependenceSet([(1, 0), (0, 1)])
        t = optimize_general_tiling(deps, 100.0)
        assert t.is_legal(deps)
        frac = float(communication_fraction(t, deps))
        rect = rectangular_communication_volume(
            continuous_optimal_sides(deps, 100.0), deps
        ) / 100.0
        assert frac <= rect + 1e-6


class TestSkewedCone:
    def test_beats_rectangular(self):
        """D = {(1,0),(1,1)}: the cone-aligned parallelepiped halves the
        per-face crossings a square suffers."""
        deps = DependenceSet([(1, 0), (1, 1)])
        t = optimize_general_tiling(deps, 100.0)
        assert t.is_legal(deps)
        assert not t.is_rectangular()
        frac = float(communication_fraction(t, deps))
        rect_frac = rectangular_communication_volume(
            continuous_optimal_sides(deps, 100.0), deps
        ) / 100.0
        assert frac < rect_frac * 0.8

    def test_negative_component_dependence(self):
        """D = {(1,-1),(1,1)}: no rectangular tiling is legal; the search
        must still return a legal (necessarily skewed) one."""
        deps = DependenceSet([(1, -1), (1, 1)])
        t = optimize_general_tiling(deps, 64.0)
        assert t.is_legal(deps)
        assert not t.is_rectangular()


class TestValidation:
    def test_volume_positive(self):
        with pytest.raises(ValueError):
            optimize_general_tiling(DependenceSet([(1, 0)]), 0.0)

    def test_deterministic_given_seed(self):
        deps = DependenceSet([(1, 0), (1, 1)])
        a = optimize_general_tiling(deps, 64.0, seed=7)
        b = optimize_general_tiling(deps, 64.0, seed=7)
        assert a.P == b.P


_dep2 = st.tuples(st.integers(0, 3), st.integers(-2, 3)).filter(
    lambda v: v[0] > 0 or (v[0] == 0 and v[1] > 0)
)


class TestProperties:
    @given(st.lists(_dep2, min_size=1, max_size=3), st.integers(16, 144))
    @settings(max_examples=15, deadline=None)
    def test_always_legal_and_never_worse_than_baselines(self, vecs, volume):
        deps = DependenceSet(vecs)
        t = optimize_general_tiling(deps, float(volume), restarts=1)
        assert t.is_legal(deps)
        # Never worse than the rectangular continuous optimum when one is
        # legal (all-non-negative dependences).
        if all(all(x >= 0 for x in v) for v in deps.vectors):
            rect = rectangular_communication_volume(
                continuous_optimal_sides(deps, float(volume)), deps
            ) / float(volume)
            # Small slack: the result's rational snapping can sit a hair
            # above the real-valued rectangular optimum.
            assert float(communication_fraction(t, deps)) <= rect * 1.01 + 1e-9
