"""Tests for SPMD program construction (ProcB/ProcNB structure)."""

import numpy as np
import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d, sum_kernel_2d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.program import RankState, TiledProgram


def _workload(extents=(8, 8, 32), procs=(2, 2, 1), kernel=None):
    return StencilWorkload(
        "t", IterationSpace.from_extents(list(extents)),
        kernel or sqrt_kernel_3d(), procs, len(extents) - 1,
    )


class TestTiledProgramStructure:
    def test_counts(self):
        p = TiledProgram(_workload(), 8, pentium_cluster(), blocking=True)
        assert p.num_ranks == 4
        assert p.tiles_per_rank == 4
        assert p.grain == 4 * 4 * 8
        assert len(p.programs()) == 4

    def test_tile_points_clipped_last(self):
        p = TiledProgram(_workload(), 5, pentium_cluster(), blocking=True)
        assert p.tiles_per_rank == 7
        assert p.tile_points(0) == 4 * 4 * 5
        assert p.tile_points(6) == 4 * 4 * 2

    def test_face_bytes(self):
        p = TiledProgram(_workload(), 8, pentium_cluster(), blocking=True)
        # face = 4 × 8 elements × 4 bytes
        assert p.face_bytes(0, 0) == 128.0
        assert p.face_bytes(1, 0) == 128.0

    def test_neighbors_grid_corner(self):
        p = TiledProgram(_workload(), 8, pentium_cluster(), blocking=True)
        n00 = p._neighbors(0)  # coords (0, 0)
        assert [(d, s) for d, s, _ in n00.entries] == [(0, None), (1, None)]
        dsts = [dst for _, _, dst in n00.entries]
        assert dsts == [p.mapping.rank_of_coords((1, 0)),
                        p.mapping.rank_of_coords((0, 1))]

    def test_neighbors_grid_interior(self):
        w = _workload((12, 12, 16), (3, 3, 1))
        p = TiledProgram(w, 4, pentium_cluster(), blocking=False)
        center = p.mapping.rank_of_coords((1, 1))
        n = p._neighbors(center)
        srcs = {s for _, s, _ in n.entries}
        dsts = {d for _, _, d in n.entries}
        assert srcs == {p.mapping.rank_of_coords((0, 1)),
                        p.mapping.rank_of_coords((1, 0))}
        assert dsts == {p.mapping.rank_of_coords((2, 1)),
                        p.mapping.rank_of_coords((1, 2))}

    def test_numeric_rejects_multi_cross_dependence(self):
        from repro.kernels.stencil import StencilKernel

        # Dependence (0,1,1) crosses both non-mapped dimensions — the
        # corner would need routing through a diagonal processor.
        kernel = StencilKernel(
            "diag", ((0, -1, -1), (-1, 0, 0)), lambda v: v[0] + v[1]
        )
        w = StencilWorkload(
            "bad3d", IterationSpace.from_extents([8, 8, 8]), kernel,
            (1, 2, 2), 0,
        )
        with pytest.raises(ValueError, match="crosses more than one"):
            TiledProgram(w, 4, pentium_cluster(), blocking=True, numeric=True)
        # Synthetic (timing-only) mode has no such restriction.
        TiledProgram(w, 4, pentium_cluster(), blocking=True, numeric=False)

    def test_numeric_diagonal_within_one_cross_dim_allowed(self):
        w = StencilWorkload(
            "diag2d",
            IterationSpace.from_extents([16, 8]),
            sum_kernel_2d(),
            (1, 2),
            0,
        )
        p = TiledProgram(w, 4, pentium_cluster(), blocking=True, numeric=True)
        assert p.comm_dims == [1]

    def test_gather_requires_numeric(self):
        p = TiledProgram(_workload(), 8, pentium_cluster(), blocking=True)
        with pytest.raises(ValueError):
            p.gather()


class TestRankState:
    def _state(self):
        return RankState(
            kernel=sqrt_kernel_3d(),
            owned_lo=(0, 4, 0),
            owned_extents=(4, 4, 16),
            halo=(1, 1, 1),
        )

    def test_halo_initialised(self):
        s = self._state()
        assert s.data.shape == (5, 5, 17)
        assert np.all(s.data[0] == 1.0)
        assert np.all(s.data[:, 0, :] == 1.0)
        assert np.all(s.data[:, :, 0] == 1.0)
        assert np.all(s.data[1:, 1:, 1:] == 0.0)

    def test_face_roundtrip(self):
        s = self._state()
        s.data[1:, 1:, 1:] = np.arange(4 * 4 * 16).reshape(4, 4, 16)
        face = s.extract_face(0, 2, (0, 7))
        assert face.shape == (1, 4, 8)
        t = self._state()
        t.inject_face(0, 2, (0, 7), face)
        assert np.array_equal(t.data[0:1, 1:, 1:9], face)

    def test_inject_shape_mismatch(self):
        s = self._state()
        with pytest.raises(ValueError, match="shape"):
            s.inject_face(0, 2, (0, 7), np.zeros((2, 4, 8)))

    def test_owned_interior_shape(self):
        s = self._state()
        assert s.owned_interior().shape == (4, 4, 16)

    def test_compute_tile_only_touches_range(self):
        s = self._state()
        s.compute_tile(2, (0, 3))
        assert np.any(s.data[1:, 1:, 1:5] != 0.0)
        assert np.all(s.data[1:, 1:, 5:] == 0.0)
