"""Deterministic traces: serial vs pooled-Engine byte identity, and
fault-plan runs leaving retransmits in the hardware lanes."""

import json

import pytest

from repro.experiments.engine import Engine
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled, run_tiled_robust
from repro.sim.faults import FaultPlan
from repro.sim.reliable import ReliableConfig


def _workload():
    return StencilWorkload(
        "det", IterationSpace.from_extents([8, 8, 2048]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


class TestChromeTraceDeterminism:
    def test_serial_vs_pooled_engine_byte_identical(self, tmp_path):
        w = _workload()
        m = pentium_cluster()
        serial = run_tiled(w, 128, m, blocking=False, trace=True)
        pooled = run_tiled(
            w, 128, m, blocking=False, trace=True,
            engine=Engine(jobs=2, cache=None),
        )
        p1 = tmp_path / "serial.json"
        p2 = tmp_path / "pooled.json"
        serial.trace.dump_chrome_trace(str(p1))
        pooled.trace.dump_chrome_trace(str(p2))
        assert p1.read_bytes() == p2.read_bytes()
        assert serial.completion_time == pooled.completion_time

    def test_same_seed_same_bytes(self, tmp_path):
        w = _workload()
        m = pentium_cluster()
        plan = FaultPlan(seed=11, drop_prob=0.1, jitter=1e-5)
        blobs = []
        for k in range(2):
            run = run_tiled_robust(
                w, 128, m, blocking=False, trace=True,
                faults=plan, reliable=ReliableConfig(),
            )
            path = tmp_path / f"f{k}.json"
            run.trace.dump_chrome_trace(str(path))
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]


class TestFaultedLanes:
    @pytest.fixture(scope="class")
    def faulted_run(self):
        run = run_tiled_robust(
            _workload(), 128, pentium_cluster(), blocking=False, trace=True,
            faults=FaultPlan(seed=3, drop_prob=0.15),
            reliable=ReliableConfig(),
        )
        assert run.status == "degraded"
        assert run.outcome.retransmits > 0
        return run

    def test_retransmits_visible_in_nic_lanes(self, faulted_run):
        retx = [
            r for r in faulted_run.trace.records
            if r.label.startswith("retx")
        ]
        assert retx
        assert {r.resource for r in retx} <= {"nic_tx", "nic_rx", "link"}
        assert any(r.resource == "nic_tx" for r in retx)
        # Retransmitted wire time is charged to the paper's terms like
        # any first transmission.
        assert all(
            r.term in ("B4", "B1", "") for r in retx
        )

    def test_dma_lane_has_kernel_copies(self, faulted_run):
        dma = [r for r in faulted_run.trace.records if r.resource == "dma"]
        assert dma
        assert {r.term for r in dma} == {"B2", "B3"}
        # B3 is charged once per logical message (retransmits reuse the
        # filled kernel buffer), B2 once per delivered message.
        sent = faulted_run.outcome.messages_sent
        assert sum(1 for r in dma if r.term == "B3") == sent

    def test_acks_visible_untermed(self, faulted_run):
        acks = [
            r for r in faulted_run.trace.records if r.kind == "ack"
        ]
        assert acks
        assert all(r.term == "" for r in acks)
        assert {r.resource for r in acks} <= {"nic_tx", "nic_rx"}

    def test_retransmits_in_both_renderers(self, faulted_run):
        from repro.viz.gantt import render_gantt
        from repro.viz.svg import gantt_svg

        text = render_gantt(faulted_run.trace, width=120)
        assert " tx  |" in text and " rx  |" in text and " dma |" in text
        tx_rows = [ln for ln in text.split("\n") if ln.startswith(" tx  |")]
        assert any("w" in ln for ln in tx_rows)
        svg = gantt_svg(faulted_run.trace)
        assert "retx" in svg
        assert "kernel_copy" in svg

    def test_chrome_export_has_retx_events(self, faulted_run, tmp_path):
        path = tmp_path / "faulted.json"
        faulted_run.trace.dump_chrome_trace(str(path))
        events = json.loads(path.read_text())["traceEvents"]
        assert any("retx" in e.get("name", "") for e in events)
        procs = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"CPU", "DMA engine", "NIC transmit", "NIC receive",
                "network link"} <= procs
