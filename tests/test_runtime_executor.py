"""Tests for simulated execution of tiled programs."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import Machine, pentium_cluster
from repro.runtime.executor import run_schedule_pair, run_tiled


def _workload(extents=(8, 8, 64), procs=(2, 2, 1)):
    return StencilWorkload(
        "x", IterationSpace.from_extents(list(extents)), sqrt_kernel_3d(),
        procs, 2,
    )


class TestRunTiled:
    def test_result_fields(self):
        r = run_tiled(_workload(), 16, pentium_cluster(), blocking=True)
        assert r.workload_name == "x"
        assert r.v == 16
        assert r.grain == 4 * 4 * 16
        assert r.schedule_name == "non-overlapping"
        assert r.completion_time > 0
        assert r.messages_sent > 0
        assert r.result is None

    def test_overlap_beats_blocking_on_calibrated_machine(self):
        non, ovl = run_schedule_pair(_workload(), 16, pentium_cluster())
        assert ovl.completion_time < non.completion_time
        assert ovl.schedule_name == "overlapping"

    def test_single_processor_no_messages(self):
        w = _workload(procs=(1, 1, 1))
        r = run_tiled(w, 16, pentium_cluster(), blocking=True)
        assert r.messages_sent == 0
        # Pure compute: extents product × t_c.
        m = pentium_cluster()
        assert r.completion_time == pytest.approx(8 * 8 * 64 * m.t_c)

    def test_single_processor_both_schedules_equal(self):
        w = _workload(procs=(1, 1, 1))
        non, ovl = run_schedule_pair(w, 16, pentium_cluster())
        assert non.completion_time == pytest.approx(ovl.completion_time)

    def test_message_counts(self):
        """2×2 grid: interior edges carry one message per tile per
        direction, plus the epilogue/prologue alignment."""
        w = _workload()
        tiles = 64 // 16
        r = run_tiled(w, 16, pentium_cluster(), blocking=True)
        # Edges in the processor graph: 4 directed (0,0)->(1,0),(0,1) etc.
        # Ranks with a successor in dim0: 2; dim1: 2 → 4 edges × tiles msgs.
        assert r.messages_sent == 4 * tiles

    def test_blocking_and_pipelined_send_same_messages(self):
        w = _workload()
        non, ovl = run_schedule_pair(w, 16, pentium_cluster())
        assert non.messages_sent == ovl.messages_sent

    def test_trace_collection(self):
        r = run_tiled(_workload(), 16, pentium_cluster(), blocking=False,
                      trace=True)
        assert r.trace.records
        assert 0 < r.mean_cpu_utilization <= 1.0

    def test_no_trace_by_default(self):
        r = run_tiled(_workload(), 16, pentium_cluster(), blocking=False)
        assert not r.trace.records

    def test_overlap_utilization_higher(self):
        """The paper's headline: overlap keeps CPUs busier."""
        non = run_tiled(_workload(), 16, pentium_cluster(), blocking=True,
                        trace=True)
        ovl = run_tiled(_workload(), 16, pentium_cluster(), blocking=False,
                        trace=True)
        assert ovl.mean_cpu_utilization > non.mean_cpu_utilization

    def test_numeric_mode_returns_array(self):
        r = run_tiled(_workload((4, 4, 8), (2, 2, 1)), 4, pentium_cluster(),
                      blocking=True, numeric=True)
        assert r.result is not None
        assert r.result.shape == (4, 4, 8)


class TestAgainstAnalyticModel:
    """Deep pipelines with interior processors (3×3 grid) must converge to
    the analytic per-step costs."""

    def _deep(self):
        return _workload((12, 12, 4096), (3, 3, 1)), pentium_cluster(), 128

    def test_overlap_steady_state_matches_pipelined_step(self):
        from repro.experiments.figures import analytic_step
        from repro.model.completion import overlap_steps

        w, m, v = self._deep()
        ovl = run_tiled(w, v, m, blocking=False)
        sc = analytic_step(w, m, v)
        steps = overlap_steps(w.tiled_space(v).normalized_upper(), 2)
        assert ovl.completion_time == pytest.approx(
            steps * sc.pipelined_step, rel=0.06
        )

    def test_overlap_never_exceeds_paper_eq4(self):
        """Eq. (4) serialises the B chain, so it upper-bounds the sim."""
        from repro.experiments.figures import analytic_times

        w, m, v = self._deep()
        ovl = run_tiled(w, v, m, blocking=False)
        _, t_eq4 = analytic_times(w, m, v)
        assert ovl.completion_time <= t_eq4 * 1.02

    def test_nonoverlap_between_cpu_and_serialized_bounds(self):
        """The blocking run's interior step is a1+a3+compute+b3+b4 (recv
        waits vanish once the pipeline is warm; B2 is absorbed by the
        DMA); eq. (3)'s serialized step adds B2 and upper-bounds it."""
        from repro.experiments.figures import analytic_step
        from repro.model.completion import nonoverlap_steps

        w, m, v = self._deep()
        non = run_tiled(w, v, m, blocking=True)
        sc = analytic_step(w, m, v)
        steps = nonoverlap_steps(w.tiled_space(v).normalized_upper())
        warm_step = (
            sc.cpu_side + sc.b3_fill_kernel_send + sc.b4_transmit
        )
        assert non.completion_time == pytest.approx(steps * warm_step, rel=0.12)
        assert non.completion_time <= steps * sc.serialized_step * 1.02


class TestNoDmaAblation:
    def test_no_dma_hurts_overlap_more(self):
        """Without DMA the kernel copies steal CPU time, shrinking the
        overlap advantage (§4's modern-hardware discussion)."""
        w = _workload((8, 8, 512), (2, 2, 1))
        m = pentium_cluster()
        m_nodma = m.with_(dma=False)
        ovl_dma = run_tiled(w, 64, m, blocking=False).completion_time
        ovl_nodma = run_tiled(w, 64, m_nodma, blocking=False).completion_time
        assert ovl_nodma > ovl_dma


class TestNetworkStatsExposure:
    def test_stats_populated(self):
        r = run_tiled(_workload(), 16, pentium_cluster(), blocking=False)
        s = r.network_stats
        assert s["messages"] == r.messages_sent
        assert s["bytes"] > 0
        assert len(s["tx_bytes"]) == 4
        assert s["latency_median"] > 0

    def test_both_schedules_move_same_bytes(self):
        non, ovl = run_schedule_pair(_workload(), 16, pentium_cluster())
        assert non.network_stats["bytes"] == ovl.network_stats["bytes"]
