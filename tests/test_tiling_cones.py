"""Cone membership, extreme vectors, and the [8] legality equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.tiling.cones import (
    cone_contains_dependences,
    extreme_vectors,
    in_cone,
    tiling_from_extremes,
)
from repro.tiling.transform import TilingTransformation, rectangular_tiling
from repro.util.intmat import FractionMatrix


class TestInCone:
    def test_square_exact_case(self):
        gens = [(1, 0), (0, 1)]
        assert in_cone(gens, (3, 5))
        assert not in_cone(gens, (-1, 0))

    def test_boundary_rays(self):
        gens = [(1, 0), (1, 1)]
        assert in_cone(gens, (2, 0))
        assert in_cone(gens, (3, 3))
        assert in_cone(gens, (2, 1))
        assert not in_cone(gens, (0, 1))

    def test_redundant_generators_lp_path(self):
        gens = [(1, 0), (0, 1), (1, 1)]
        assert in_cone(gens, (5, 3))
        assert not in_cone(gens, (-1, 2))

    def test_underdetermined(self):
        assert in_cone([(1, 1)], (2, 2))
        assert not in_cone([(1, 1)], (2, 1))

    def test_zero_point_always_in(self):
        assert in_cone([(1, 0)], (0, 0))
        assert in_cone([], (0, 0))
        assert not in_cone([], (1, 0))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            in_cone([(1, 0)], (1, 0, 0))


class TestLegalityEquivalence:
    """Ramanujam–Sadayappan: H D >= 0  ⟺  D ⊆ cone(columns of P)."""

    def test_rectangular(self):
        deps = DependenceSet([(1, 1), (1, 0), (0, 1)])
        t = rectangular_tiling([10, 10])
        assert t.is_legal(deps) == cone_contains_dependences(t, deps)

    def test_illegal_case(self):
        deps = DependenceSet([(1, -1)])
        t = rectangular_tiling([4, 4])
        assert not t.is_legal(deps)
        assert not cone_contains_dependences(t, deps)

    def test_skewed_tiling(self):
        deps = DependenceSet([(1, -1), (0, 1)])
        t = TilingTransformation(H=FractionMatrix([["1/4", 0], ["1/4", "1/4"]]))
        assert t.is_legal(deps)
        assert cone_contains_dependences(t, deps)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(-3, 3)).filter(any),
            min_size=1, max_size=4,
        ),
        st.integers(1, 5), st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_equivalence_random(self, vecs, s1, s2):
        # Filter out lexicographically negative vectors for a valid set.
        vecs = [v for v in vecs if v[0] > 0 or (v[0] == 0 and v[1] > 0)]
        if not vecs:
            return
        deps = DependenceSet(vecs)
        t = rectangular_tiling([s1, s2])
        assert t.is_legal(deps) == cone_contains_dependences(t, deps)


class TestExtremeVectors:
    def test_example1(self):
        """(1,1) lies in cone{(1,0),(0,1)}: the extremes are the units."""
        deps = DependenceSet([(1, 1), (1, 0), (0, 1)])
        assert set(extreme_vectors(deps)) == {(1, 0), (0, 1)}

    def test_all_extreme(self):
        deps = DependenceSet([(2, -1), (1, 2)])
        assert set(extreme_vectors(deps)) == {(2, -1), (1, 2)}

    def test_scalar_multiples_collapse(self):
        deps = DependenceSet([(1, 1), (2, 2), (3, 3)])
        ext = extreme_vectors(deps)
        assert len(ext) == 1

    def test_3d(self):
        deps = DependenceSet(
            [(1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 1), (1, 0, 1)]
        )
        assert set(extreme_vectors(deps)) == {(1, 0, 0), (0, 1, 0), (0, 0, 1)}


class TestTilingFromExtremes:
    def test_unit_extremes_give_rectangular(self):
        deps = DependenceSet([(1, 1), (1, 0), (0, 1)])
        t = tiling_from_extremes(deps, scale=10)
        assert t.is_legal(deps)
        assert t.tile_volume() == 100

    def test_skewed_extremes(self):
        deps = DependenceSet([(1, -1), (1, 1), (1, 0)])
        t = tiling_from_extremes(deps, scale=4)
        assert t.is_legal(deps)
        assert not t.is_rectangular()

    def test_scaling_contains_dependences(self):
        deps = DependenceSet([(1, 1), (1, 0), (0, 1)])
        assert tiling_from_extremes(deps, scale=4).contains_dependences(deps)

    def test_wrong_extreme_count(self):
        deps = DependenceSet([(1, 1)])
        with pytest.raises(ValueError, match="extreme vectors"):
            tiling_from_extremes(deps)

    def test_bad_scale(self):
        deps = DependenceSet([(1, 0), (0, 1)])
        with pytest.raises(ValueError):
            tiling_from_extremes(deps, scale=0)


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(any),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_extremes_generate_the_same_cone(self, vecs):
        deps = DependenceSet(vecs)
        ext = extreme_vectors(deps)
        assert ext  # never empty
        for v in deps.vectors:
            assert in_cone(ext, v)

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(any),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_extremes_are_irredundant(self, vecs):
        deps = DependenceSet(vecs)
        ext = list(extreme_vectors(deps))
        for k, v in enumerate(ext):
            others = ext[:k] + ext[k + 1:]
            if others:
                assert not in_cone(others, v)
