"""Tests for linear hyperplane schedules (paper §2.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.ir.loopnest import IterationSpace
from repro.schedule.linear import LinearSchedule


class TestConstruction:
    def test_valid(self):
        s = LinearSchedule(
            (1, 1),
            IterationSpace.from_extents([4, 4]),
            DependenceSet([(1, 0), (0, 1)]),
        )
        assert s.pi == (1, 1)

    def test_invalid_pi_rejected(self):
        with pytest.raises(ValueError, match="not a valid schedule"):
            LinearSchedule(
                (1, 0),
                IterationSpace.from_extents([4, 4]),
                DependenceSet([(1, 0), (0, 1)]),
            )

    def test_dimension_mismatches(self):
        with pytest.raises(ValueError):
            LinearSchedule(
                (1,),
                IterationSpace.from_extents([4, 4]),
                DependenceSet([(1, 0)]),
            )
        with pytest.raises(ValueError):
            LinearSchedule(
                (1, 1),
                IterationSpace.from_extents([4, 4]),
                DependenceSet([(1,)]),
            )


class TestScheduling:
    def test_example1_length(self):
        """Paper Example 1: Π = (1,1) over 1000×100 tiles → P = 1099."""
        s = LinearSchedule(
            (1, 1),
            IterationSpace.from_extents([1000, 100]),
            DependenceSet([(1, 1), (1, 0), (0, 1)]),
        )
        assert s.num_steps == 999 + 99 + 1 == 1099
        assert s.step_of((0, 0)) == 0
        assert s.step_of((999, 99)) == 1098

    def test_example3_length(self):
        """Paper Example 3: Π = (1,2) over the same space → P = 1198."""
        s = LinearSchedule(
            (1, 2),
            IterationSpace.from_extents([1000, 100]),
            DependenceSet([(1, 0), (0, 1)]),
        )
        assert s.num_steps == 999 + 2 * 99 + 1 == 1198

    def test_t0_normalises_first_step_to_zero(self):
        s = LinearSchedule(
            (1, 1),
            IterationSpace([-3, 5], [0, 9]),
            DependenceSet([(1, 0), (0, 1)]),
        )
        steps = [s.step_of(p) for p in s.space.points()]
        assert min(steps) == 0
        assert max(steps) == s.num_steps - 1

    def test_negative_pi_component(self):
        """Π may have negative entries when dependences allow it."""
        s = LinearSchedule(
            (1, -1),
            IterationSpace.from_extents([5, 5]),
            DependenceSet([(2, 1)]),
        )
        steps = [s.step_of(p) for p in s.space.points()]
        assert min(steps) == 0

    def test_displacement_divides_steps(self):
        s = LinearSchedule(
            (2, 2),
            IterationSpace.from_extents([4, 4]),
            DependenceSet([(1, 0), (0, 1)]),
        )
        assert s.displacement == 2
        # steps collapse by the displacement: length equals the Π range / disp
        assert s.num_steps == (2 * 3 + 2 * 3) // 2 + 1

    def test_respects_dependences_strictly(self):
        s = LinearSchedule(
            (1, 2),
            IterationSpace.from_extents([4, 4]),
            DependenceSet([(1, 0), (0, 1)]),
        )
        assert s.respects_dependences_strictly()

    def test_str(self):
        s = LinearSchedule(
            (1, 1),
            IterationSpace.from_extents([2, 2]),
            DependenceSet([(1, 0), (0, 1)]),
        )
        assert "Π=(1, 1)" in str(s)


_pi = st.tuples(st.integers(1, 3), st.integers(1, 3))
_ext = st.tuples(st.integers(1, 6), st.integers(1, 6))


class TestProperties:
    @given(_pi, _ext)
    @settings(max_examples=60, deadline=None)
    def test_dependences_always_advance_time(self, pi, ext):
        """For any valid Π, j+d is scheduled strictly after j."""
        deps = DependenceSet([(1, 0), (0, 1)])
        space = IterationSpace.from_extents(list(ext))
        s = LinearSchedule(pi, space, deps)
        for p in space.points():
            for d in deps.vectors:
                q = tuple(a + b for a, b in zip(p, d))
                if space.contains(q):
                    assert s.step_of(q) > s.step_of(p)

    @given(_pi, _ext)
    @settings(max_examples=60, deadline=None)
    def test_steps_cover_0_to_P_minus_1(self, pi, ext):
        deps = DependenceSet([(1, 0), (0, 1)])
        space = IterationSpace.from_extents(list(ext))
        s = LinearSchedule(pi, space, deps)
        steps = sorted({s.step_of(p) for p in space.points()})
        assert steps[0] == 0
        assert steps[-1] == s.num_steps - 1
