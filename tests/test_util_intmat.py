"""Unit and property tests for exact rational matrices."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intmat import (
    FractionMatrix,
    as_fraction,
    as_fraction_vector,
    diagonal,
    floor_vector,
    identity,
)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(3, 7)
        assert as_fraction(f) is f

    def test_float_uses_decimal_repr(self):
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_string(self):
        assert as_fraction("2/3") == Fraction(2, 3)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())

    def test_vector(self):
        assert as_fraction_vector([1, 0.5]) == (Fraction(1), Fraction(1, 2))


class TestFloorVector:
    def test_mixed(self):
        assert floor_vector([Fraction(7, 2), Fraction(-1, 2)]) == (3, -1)

    def test_integers_unchanged(self):
        assert floor_vector([Fraction(4), Fraction(-4)]) == (4, -4)


class TestConstruction:
    def test_shape(self):
        m = FractionMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)
        assert m.nrows == 2 and m.ncols == 3

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            FractionMatrix([[1, 2], [3]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FractionMatrix([])
        with pytest.raises(ValueError):
            FractionMatrix([[]])

    def test_getitem_row_col(self):
        m = FractionMatrix([[1, 2], [3, 4]])
        assert m[1, 0] == 3
        assert m.row(0) == (1, 2)
        assert m.col(1) == (2, 4)

    def test_equality_and_hash(self):
        a = FractionMatrix([[1, 2], [3, 4]])
        b = FractionMatrix([["1", "2"], [3.0, 4]])
        assert a == b
        assert hash(a) == hash(b)

    def test_from_columns(self):
        m = FractionMatrix.from_columns([[1, 2], [3, 4]])
        assert m.col(0) == (1, 2)
        assert m.col(1) == (3, 4)


class TestArithmetic:
    def test_add_sub_neg(self):
        a = FractionMatrix([[1, 2], [3, 4]])
        b = FractionMatrix([[4, 3], [2, 1]])
        assert (a + b).rows == ((5, 5), (5, 5))
        assert (a - a).rows == ((0, 0), (0, 0))
        assert (-a).rows == ((-1, -2), (-3, -4))

    def test_shape_mismatch(self):
        a = FractionMatrix([[1, 2]])
        b = FractionMatrix([[1], [2]])
        with pytest.raises(ValueError):
            a + b

    def test_scale(self):
        a = FractionMatrix([[2, 4]])
        assert a.scale("1/2").rows == ((1, 2),)

    def test_matmul(self):
        a = FractionMatrix([[1, 2], [3, 4]])
        i = identity(2)
        assert a @ i == a
        assert (a @ a).rows == ((7, 10), (15, 22))

    def test_matmul_shape_mismatch(self):
        a = FractionMatrix([[1, 2]])
        with pytest.raises(ValueError):
            a @ a

    def test_matvec(self):
        a = FractionMatrix([[1, 2], [3, 4]])
        assert a.matvec([1, 1]) == (3, 7)

    def test_matvec_length_mismatch(self):
        a = FractionMatrix([[1, 2]])
        with pytest.raises(ValueError):
            a.matvec([1, 2, 3])

    def test_transpose(self):
        a = FractionMatrix([[1, 2, 3], [4, 5, 6]])
        assert a.transpose().shape == (3, 2)
        assert a.transpose().transpose() == a


class TestDeterminantInverse:
    def test_det_identity(self):
        assert identity(4).determinant() == 1

    def test_det_2x2(self):
        assert FractionMatrix([[1, 2], [3, 4]]).determinant() == -2

    def test_det_singular(self):
        assert FractionMatrix([[1, 2], [2, 4]]).determinant() == 0

    def test_det_nonsquare(self):
        with pytest.raises(ValueError):
            FractionMatrix([[1, 2, 3]]).determinant()

    def test_det_with_zero_pivot_requires_swap(self):
        m = FractionMatrix([[0, 1], [1, 0]])
        assert m.determinant() == -1

    def test_inverse_diagonal(self):
        d = diagonal([2, 4])
        inv = d.inverse()
        assert inv[0, 0] == Fraction(1, 2)
        assert inv[1, 1] == Fraction(1, 4)

    def test_inverse_singular(self):
        with pytest.raises(ZeroDivisionError):
            FractionMatrix([[1, 1], [1, 1]]).inverse()

    def test_inverse_nonsquare(self):
        with pytest.raises(ValueError):
            FractionMatrix([[1, 2, 3]]).inverse()

    def test_rank(self):
        assert FractionMatrix([[1, 2], [2, 4]]).rank() == 1
        assert identity(3).rank() == 3
        assert FractionMatrix([[0, 0], [0, 0]]).rank() == 0
        assert FractionMatrix([[1, 2, 3], [4, 5, 6]]).rank() == 2


class TestPredicates:
    def test_is_integer(self):
        assert FractionMatrix([[1, 2]]).is_integer()
        assert not FractionMatrix([[0.5]]).is_integer()

    def test_is_nonnegative(self):
        assert FractionMatrix([[0, 1]]).is_nonnegative()
        assert not FractionMatrix([[0, -1]]).is_nonnegative()

    def test_floor(self):
        m = FractionMatrix([["7/2", "-1/2"]]).floor()
        assert m.rows == ((3, -1),)

    def test_to_int_rows(self):
        assert FractionMatrix([[1, 2]]).to_int_rows() == ((1, 2),)
        with pytest.raises(ValueError):
            FractionMatrix([[0.5]]).to_int_rows()

    def test_to_float_rows(self):
        assert FractionMatrix([["1/2"]]).to_float_rows() == ((0.5,),)


class TestFactories:
    def test_identity_validation(self):
        with pytest.raises(ValueError):
            identity(0)

    def test_diagonal(self):
        d = diagonal([1, 2, 3])
        assert d[2, 2] == 3
        assert d[0, 1] == 0

    def test_diagonal_empty(self):
        with pytest.raises(ValueError):
            diagonal([])


_small_entries = st.integers(min_value=-6, max_value=6)


def _square_matrix(n: int):
    return st.lists(
        st.lists(_small_entries, min_size=n, max_size=n), min_size=n, max_size=n
    ).map(FractionMatrix)


class TestProperties:
    @given(_square_matrix(3))
    @settings(max_examples=60, deadline=None)
    def test_inverse_roundtrip(self, m):
        if m.determinant() == 0:
            return
        assert m @ m.inverse() == identity(3)
        assert m.inverse() @ m == identity(3)

    @given(_square_matrix(3), _square_matrix(3))
    @settings(max_examples=60, deadline=None)
    def test_det_multiplicative(self, a, b):
        assert (a @ b).determinant() == a.determinant() * b.determinant()

    @given(_square_matrix(3))
    @settings(max_examples=60, deadline=None)
    def test_det_transpose_invariant(self, m):
        assert m.determinant() == m.transpose().determinant()

    @given(_square_matrix(3))
    @settings(max_examples=60, deadline=None)
    def test_rank_full_iff_nonsingular(self, m):
        assert (m.rank() == 3) == (m.determinant() != 0)
