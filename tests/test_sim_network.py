"""Tests for the point-to-point network model."""

import pytest

from repro.model.machine import Machine
from repro.sim.core import Simulator
from repro.sim.network import Network


def _machine(**kw):
    defaults = dict(t_c=1e-6, t_s=0.0, t_t=1e-6, network_latency=0.0)
    defaults.update(kw)
    return Machine(**defaults)


class TestTransmit:
    def test_arrival_after_tx_and_rx(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        arrivals = []
        net.transmit(0, 1, 1000).add_callback(arrivals.append)
        sim.run()
        # TX 1 ms then RX 1 ms (store-and-forward endpoints).
        assert arrivals == [(0.001, 0.002)]

    def test_latency_added_between_tx_and_rx(self):
        sim = Simulator()
        net = Network(sim, _machine(network_latency=0.5), 2)
        arrivals = []
        net.transmit(0, 1, 1000).add_callback(arrivals.append)
        sim.run()
        # TX 0..1 ms, then 0.5 s switch latency, then RX 1 ms.
        assert arrivals == [(0.501, 0.502)]

    def test_on_sent_fires_at_tx_completion(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        sent = []
        net.transmit(0, 1, 1000, on_sent=sent.append)
        sim.run()
        assert sent == [(0.0, 0.001)]

    def test_tx_contention_serialises_sends(self):
        sim = Simulator()
        net = Network(sim, _machine(), 3)
        arrivals = []
        net.transmit(0, 1, 1000).add_callback(lambda i: arrivals.append(("a", i)))
        net.transmit(0, 2, 1000).add_callback(lambda i: arrivals.append(("b", i)))
        sim.run()
        assert arrivals[0] == ("a", (0.001, 0.002))
        # second message's TX waits for the first: TX 0.001-0.002, RX to 0.003
        assert arrivals[1] == ("b", (0.002, 0.003))

    def test_rx_contention(self):
        sim = Simulator()
        net = Network(sim, _machine(), 3)
        arrivals = []
        net.transmit(0, 2, 1000).add_callback(lambda i: arrivals.append(i))
        net.transmit(1, 2, 1000).add_callback(lambda i: arrivals.append(i))
        sim.run()
        # Both TX in parallel (different senders); RX at node 2 serialises.
        assert arrivals == [(0.001, 0.002), (0.002, 0.003)]

    def test_duplex_resources_distinct(self):
        sim = Simulator()
        assert Network(sim, _machine(duplex=True), 2).tx[0] is not (
            Network(sim, _machine(duplex=True), 2).rx[0]
        )
        half = Network(sim, _machine(duplex=False), 2)
        assert half.tx[0] is half.rx[0]

    def test_duplex_vs_half_duplex(self):
        """Node 1 sends two messages while one arrives: full duplex
        overlaps its RX with its TXs, half duplex serialises them."""
        for duplex, expected_arrival in ((True, 0.002), (False, 0.003)):
            sim = Simulator()
            net = Network(sim, _machine(duplex=duplex), 3)
            ends = []
            net.transmit(1, 2, 1000)
            net.transmit(1, 2, 1000)
            net.transmit(0, 1, 1000).add_callback(lambda i: ends.append(i[1]))
            sim.run()
            assert ends == [pytest.approx(expected_arrival)]

    def test_loopback_is_free(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        arrivals = []
        sent = []
        net.transmit(1, 1, 10_000, on_sent=sent.append).add_callback(arrivals.append)
        sim.run()
        assert arrivals == [(0.0, 0.0)]
        assert sent == [(0.0, 0.0)]

    def test_counters(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        net.transmit(0, 1, 100)
        net.transmit(0, 1, 200)
        sim.run()
        assert net.messages_carried == 2
        assert net.bytes_carried == 300

    def test_validation(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        with pytest.raises(ValueError):
            net.transmit(0, 5, 10)
        with pytest.raises(ValueError):
            net.transmit(-1, 1, 10)
        with pytest.raises(ValueError):
            net.transmit(0, 1, -10)
        with pytest.raises(ValueError):
            Network(sim, _machine(), 0)
