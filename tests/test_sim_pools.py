"""Satellite regression: pooled records survive fault injection.

Message records and wait frames are recycled through per-world free
lists.  Recycling bugs are silent — a leaked record just grows the pool,
a double release corrupts a *later* message — so these tests assert the
counter invariants that make leaks and double frees loud:

* every acquired message is either released back or still legitimately
  parked (out-of-order hold-back, unmatched-arrival buffer) when the
  world quiesces, even across a chaos campaign of drops, duplicates and
  jitter;
* wait frames balance exactly against the processes still blocked in a
  wait at quiescence;
* double release raises immediately;
* a reliability transport bypasses pooling entirely (it holds message
  references across retransmits — recycling would corrupt them), and
  the ``_POOLING`` escape hatch produces bit-identical runs.
"""

from __future__ import annotations

import pytest

import repro.sim.mpi as mpi_mod
from repro.kernels.workloads import scale_workload
from repro.model.machine import pentium_cluster
from repro.runtime.program import TiledProgram
from repro.sim.faults import FaultPlan
from repro.sim.mpi import World
from repro.sim.reliable import ReliableConfig


def _chaos_world(faults=None, reliable=None):
    m = pentium_cluster()
    prog = TiledProgram(scale_workload(4, 64), 8, m, blocking=False)
    world = World(m, prog.num_ranks, faults=faults, reliable=reliable)
    return world, prog


def _parked_messages(world: World) -> int:
    """Messages legitimately still alive at quiescence: held back by the
    non-overtaking rule (their predecessor was dropped) or sitting in the
    unmatched-arrival buffer."""
    held = sum(len(d) for d in world._stream_held.values())
    arrived = sum(len(a) for a in world._arrived)
    return held + arrived


def _frames_in_flight(world: World) -> int:
    """Blocked waits hold their frame; everything else released it."""
    return sum(
        1
        for p in world.sim.unfinished_processes()
        if p.waiting_on and p.waiting_on.startswith("wait")
    )


def test_clean_run_pool_balances_exactly():
    world, prog = _chaos_world()
    world.run(prog.programs())
    assert world.pool_acquired > 0
    assert world.pool_released == world.pool_acquired
    assert world.pool_created == len(world._msg_pool)
    assert world.frames_acquired > 0
    assert world.frames_released == world.frames_acquired
    # Steady state really recycled: far fewer records than messages.
    assert world.pool_created < world.pool_acquired


def test_chaos_without_arq_neither_leaks_nor_double_frees():
    # Drops orphan their stream successors (held back forever) and leave
    # unmatched receivers blocked; duplicates are discarded at the NIC.
    # Every path must still balance the counters.
    world, prog = _chaos_world(
        faults=FaultPlan(seed=11, drop_prob=0.04, duplicate_prob=0.02,
                         jitter=1e-5),
    )
    outcome = world.run_outcome(prog.programs())
    assert outcome.status in ("deadlocked", "degraded")
    assert outcome.messages_dropped > 0
    assert world.pool_acquired > 0
    assert world.pool_acquired == world.pool_released + _parked_messages(world)
    assert world.frames_acquired - world.frames_released == \
        _frames_in_flight(world)
    # The free list never grows beyond what was created.
    assert len(world._msg_pool) <= world.pool_created


def test_duplicate_and_jitter_only_chaos_completes_and_balances():
    world, prog = _chaos_world(
        faults=FaultPlan(seed=5, duplicate_prob=0.05, jitter=2e-5),
    )
    outcome = world.run_outcome(prog.programs())
    assert outcome.status == "completed"
    assert world.pool_acquired == world.pool_released
    assert world.frames_acquired == world.frames_released


def test_double_release_raises():
    world, _ = _chaos_world()
    msg = world._make_message(0, 1, 0, None, 64.0)
    world._release_msg(msg)
    with pytest.raises(RuntimeError, match="double release"):
        world._release_msg(msg)


def test_arq_transport_bypasses_pooling():
    # The reliability layer holds message references across retransmits
    # and dedup checks; pooling must disable itself, counters stay zero.
    world, prog = _chaos_world(
        faults=FaultPlan(seed=7, drop_prob=0.03, duplicate_prob=0.01,
                         jitter=1e-5),
        reliable=ReliableConfig(),
    )
    assert not world._pooling
    outcome = world.run_outcome(prog.programs())
    assert outcome.status in ("completed", "degraded")
    assert world.pool_acquired == 0
    assert world.pool_released == 0
    assert world.pool_created == 0
    # Wait frames are always pooled — they are never referenced by the
    # transport — and still balance.
    assert world.frames_acquired == world.frames_released


def test_pooling_escape_hatch_is_bit_identical(monkeypatch):
    def fingerprint():
        world, prog = _chaos_world(
            faults=FaultPlan(seed=3, drop_prob=0.02),
        )
        outcome = world.run_outcome(prog.programs())
        return (outcome.status, outcome.completion_time,
                world.sim.event_count, world.messages_sent,
                outcome.messages_dropped)

    pooled = fingerprint()
    monkeypatch.setattr(mpi_mod, "_POOLING", False)
    unpooled = fingerprint()
    assert pooled == unpooled
