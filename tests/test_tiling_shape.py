"""Tests for communication-minimal tile shape selection."""

import math
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.tiling.shape import (
    communication_minimal_rectangular_tiling,
    communication_ratio,
    continuous_optimal_sides,
    dependence_column_sums,
    optimal_rectangular_sides,
    rectangular_communication_volume,
)


class TestColumnSums:
    def test_example1(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])
        assert dependence_column_sums(d) == (2, 2)

    def test_3d(self):
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        assert dependence_column_sums(d) == (1, 1, 1)


class TestRectangularVolume:
    def test_matches_formula(self):
        d = DependenceSet([(1, 0), (0, 1)])
        # 4x8 tile: comm = g*(1/4 + 1/8) = 32*(0.375) = 12
        assert rectangular_communication_volume((4, 8), d) == pytest.approx(12.0)

    def test_mapped_dim_excluded(self):
        d = DependenceSet([(1, 0), (0, 1)])
        assert rectangular_communication_volume((4, 8), d, mapped_dim=0) == (
            pytest.approx(4.0)
        )

    def test_validation(self):
        d = DependenceSet([(1, 0)])
        with pytest.raises(ValueError):
            rectangular_communication_volume((4,), d)
        with pytest.raises(ValueError):
            rectangular_communication_volume((0, 1), d)


class TestContinuousOptimum:
    def test_symmetric_deps_give_square(self):
        d = DependenceSet([(1, 0), (0, 1)])
        s = continuous_optimal_sides(d, 100.0)
        assert s[0] == pytest.approx(s[1])
        assert s[0] * s[1] == pytest.approx(100.0)

    def test_sides_proportional_to_column_sums(self):
        d = DependenceSet([(2, 0), (0, 1)])  # c = (2, 1)
        s = continuous_optimal_sides(d, 128.0)
        assert s[0] / s[1] == pytest.approx(2.0)
        assert s[0] * s[1] == pytest.approx(128.0)

    def test_mapped_dim_gets_free_share(self):
        d = DependenceSet([(1, 0), (0, 1)])
        s = continuous_optimal_sides(d, 64.0, mapped_dim=0)
        assert s[0] > 0 and s[1] > 0
        assert s[0] * s[1] == pytest.approx(64.0)

    def test_no_communicating_dims(self):
        d = DependenceSet([(0, 1)])
        s = continuous_optimal_sides(d, 49.0, mapped_dim=1)
        assert s[0] * s[1] == pytest.approx(49.0)

    def test_validation(self):
        d = DependenceSet([(1, 0)])
        with pytest.raises(ValueError):
            continuous_optimal_sides(d, -1.0)
        with pytest.raises(ValueError):
            continuous_optimal_sides(d, 10.0, mapped_dim=7)


class TestIntegerOptimum:
    def test_square_for_symmetric(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])
        assert optimal_rectangular_sides(d, 100) == (10, 10)

    def test_respects_budget(self):
        d = DependenceSet([(1, 0), (0, 1)])
        sides = optimal_rectangular_sides(d, 37)
        assert sides[0] * sides[1] <= 37

    def test_degenerate_budget(self):
        d = DependenceSet([(1, 0), (0, 1)])
        assert optimal_rectangular_sides(d, 1) == (1, 1)

    def test_tiling_wrapper_legal(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])
        t = communication_minimal_rectangular_tiling(d, 100)
        assert t.is_legal(d)
        assert t.tile_sides() == (10, 10)

    def test_ratio_helper(self):
        d = DependenceSet([(1, 0), (0, 1)])
        t = communication_minimal_rectangular_tiling(d, 16)
        assert communication_ratio(t, d) == 0.5  # 2/side at side 4


def _brute_best(deps, volume, mapped_dim):
    best = None
    best_key = None
    for cand in product(range(1, volume + 1), repeat=deps.ndim):
        vol = math.prod(cand)
        if vol > volume:
            continue
        comm = rectangular_communication_volume(cand, deps, mapped_dim)
        key = (comm / vol, -vol)
        if best_key is None or key < best_key:
            best_key, best = key, cand
    return best_key


_dep2 = st.tuples(st.integers(0, 2), st.integers(0, 2)).filter(any)


class TestAgainstBruteForce:
    @given(st.lists(_dep2, min_size=1, max_size=3), st.integers(4, 36))
    @settings(max_examples=40, deadline=None)
    def test_local_search_matches_exhaustive(self, vecs, volume):
        """With a generous search radius the local search finds the same
        quality as exhaustive search on small budgets."""
        d = DependenceSet(vecs)
        sides = optimal_rectangular_sides(d, volume, search_radius=volume)
        vol = math.prod(sides)
        key = (rectangular_communication_volume(sides, d) / vol, -vol)
        assert key == _brute_best(d, volume, None)
