"""Smoke tests of the ``python -m repro`` command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "i", "--points", "4"])
        assert args.experiment == "i"
        assert args.points == 4
        assert not args.full

    def test_machine_choice(self):
        args = build_parser().parse_args(["--machine", "sci", "examples"])
        assert args.machine == "sci"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--machine", "cray", "examples"])


class TestCommands:
    def test_examples(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "400036" in out
        assert "179700" in out

    def test_verify(self, capsys):
        assert main(["verify", "--v", "8"]) == 0
        out = capsys.readouterr().out
        assert out.count("[PASS]") == 4

    def test_figure_reduced_with_explicit_heights(self, capsys):
        assert main(["figure", "iii", "--heights", "32,64"]) == 0
        out = capsys.readouterr().out
        assert "improvement at optima" in out
        assert "32" in out

    def test_gantt(self, capsys):
        assert main(["gantt", "--v", "512", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "non-overlapping" in out and "overlapping" in out
        assert "#" in out

    def test_codegen_mpi(self, capsys):
        assert main(["codegen", "mpi", "--schedule", "overlap"]) == 0
        out = capsys.readouterr().out
        assert "ProcNB" in out and "MPI_Isend" in out

    def test_codegen_mpi_blocking(self, capsys):
        assert main(["codegen", "mpi", "--schedule", "nonoverlap"]) == 0
        assert "ProcB" in capsys.readouterr().out

    def test_codegen_loops(self, capsys):
        assert main(["codegen", "loops", "--order", "wavefront"]) == 0
        out = capsys.readouterr().out
        assert "def run(data):" in out
        assert "for step in range(" in out

    def test_sci_machine_examples(self, capsys):
        assert main(["--machine", "sci", "verify"]) == 0
        assert capsys.readouterr().out.count("[PASS]") == 4


class TestCampaignAndTrace:
    def test_campaign_run_and_compare(self, tmp_path, capsys):
        out = str(tmp_path / "camp.json")
        assert main(["campaign", "run", "--out", out]) == 0
        text = capsys.readouterr().out
        assert "saved to" in text
        # Self-comparison: no regressions, exit 0.
        assert main(["campaign", "compare", "--baseline", out, "--out", out]) == 0
        text = capsys.readouterr().out
        assert "campaign comparison" in text
        assert "+0.0%" in text

    def test_trace_dump(self, tmp_path, capsys):
        import json

        out = str(tmp_path / "tr.json")
        assert main(["trace", "--v", "256", "--out", out]) == 0
        assert "Perfetto" in capsys.readouterr().out
        events = json.loads(open(out).read())["traceEvents"]
        assert events
        xs = [e for e in events if e["ph"] == "X"]
        assert xs
        assert {"name", "ph", "ts", "dur", "tid", "pid"} <= set(xs[0])
        # hardware lanes are present alongside the CPU lane
        procs = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert "CPU" in procs and "DMA engine" in procs


class TestChaosCommand:
    def test_chaos_args(self):
        args = build_parser().parse_args(
            ["chaos", "--seed", "7", "--drop-rate", "0.1", "--no-retransmit"]
        )
        assert args.seed == 7
        assert args.drop_rate == "0.1"
        assert args.no_retransmit

    def test_chaos_smoke(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["--jobs", "1", "chaos", "--seed", "1",
                     "--drop-rate", "0.0,0.05", "--depth", "32"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "overlapping" in out
        assert "deadlocked" not in out  # retransmission recovers all drops


class TestPlanCommand:
    def test_plan_and_run(self, capsys):
        assert main(["plan", "--extents", "16,16,1024", "--processors", "16",
                     "--run"]) == 0
        out = capsys.readouterr().out
        assert "V=" in out and "simulated:" in out

    def test_plan_bad_kernel(self):
        with pytest.raises(SystemExit):
            main(["plan", "--kernel", "nope"])


class TestResumeFlag:
    def test_parses_before_subcommand(self):
        args = build_parser().parse_args(
            ["--resume", "campaign.jsonl", "figure", "iii"]
        )
        assert args.resume == "campaign.jsonl"
        assert build_parser().parse_args(["figure", "iii"]).resume is None

    def test_harness_and_shard_timeout_flags_parse(self):
        assert build_parser().parse_args(["chaos", "--harness"]).harness
        args = build_parser().parse_args(["scale", "--shard-timeout", "2.5"])
        assert args.shard_timeout == 2.5

    def test_resumed_figure_serves_from_journal(self, capsys, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        argv = ["--jobs", "1", "--no-cache", "--resume", str(journal),
                "figure", "iii", "--heights", "32,64"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert journal.exists() and journal.stat().st_size > 0
        # The restarted sweep replays the journal instead of simulating.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.err
        assert "4 completed runs on record" in captured.err
        assert captured.out == first


class TestSummaCommand:
    def test_summa_args(self):
        args = build_parser().parse_args(
            ["summa", "--grid", "8", "--segments", "2", "--method",
             "pipelined", "--topology", "mesh2d"]
        )
        assert args.grid == 8
        assert args.segments == 2
        assert args.topology == "mesh2d"

    def test_topology_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summa", "--topology", "hypercube"])

    def test_summa_both_methods_print_speedup(self, capsys):
        assert main(["summa", "--grid", "2", "--panels", "2",
                     "--tile", "16"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "pipelined" in out
        assert "speedup over sequential" in out

    def test_summa_report_shows_collective_legs(self, capsys):
        assert main(["summa", "--grid", "2", "--panels", "2", "--tile", "16",
                     "--method", "pipelined", "--topology", "mesh2d",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "routed hops" in out
        assert "critical path" in out
        assert "mcast" in out  # labelled collective legs in the chain

    def test_summa_chaos_degrades(self, capsys):
        assert main(["summa", "--grid", "2", "--panels", "2", "--tile", "16",
                     "--method", "pipelined", "--drop-rate", "0.05",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "degraded" in out or "completed" in out

    def test_summa_trace_out(self, tmp_path, capsys):
        out_path = tmp_path / "summa.json"
        assert main(["summa", "--grid", "2", "--panels", "2", "--tile", "16",
                     "--method", "pipelined", "--trace-out",
                     str(out_path)]) == 0
        assert out_path.exists() and out_path.stat().st_size > 0


class TestTopologyFlags:
    def test_scale_topology_parses(self):
        args = build_parser().parse_args(["scale", "--topology", "ring"])
        assert args.topology == "ring"

    def test_scale_routed_shards_rejected(self):
        with pytest.raises(SystemExit):
            main(["scale", "--grid", "2", "--depth", "8", "--v", "4",
                  "--topology", "ring", "--shards", "2"])

    def test_scale_routed_run(self, capsys):
        assert main(["scale", "--grid", "2", "--depth", "8", "--v", "4",
                     "--topology", "ring"]) == 0
        assert "completion time" in capsys.readouterr().out

    def test_trace_topology_run(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert main(["trace", "--v", "32", "--topology", "mesh2d",
                     "--out", str(out_path), "--report"]) == 0
        out = capsys.readouterr().out
        assert "link" in out  # the routed lane shows up in the lane list
        assert out_path.exists()
