"""Tests for the model-guided autotuner (search, budget, determinism)."""

import json

import pytest

from repro.experiments.cache import SimCache
from repro.experiments.engine import Engine
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.tuning import exhaustive_heights, sweep_equivalent_steps, tune

pytestmark = pytest.mark.tuning


def _workload(extents=(8, 8, 1024), procs=(2, 2, 1), name="tune-w"):
    return StencilWorkload(
        name, IterationSpace.from_extents(list(extents)),
        sqrt_kernel_3d(), procs, len(extents) - 1,
    )


def _aniso():
    """Anisotropic space where the default square grid is
    communication-suboptimal — the shape search's win case."""
    return StencilWorkload(
        "tune-aniso", IterationSpace.from_extents([8, 64, 256]),
        sqrt_kernel_3d(), (4, 4, 1), 2,
    )


@pytest.fixture(scope="module")
def machine():
    return pentium_cluster()


@pytest.fixture(scope="module")
def sweep_best(machine):
    """The exhaustive 32-point sweep's optimum on the reference workload."""
    w = _workload()
    engine = Engine(jobs=1, cache=None)
    heights = exhaustive_heights(w)
    runs = engine.run_batch(w, machine, [(v, False) for v in heights])
    return min(zip(heights, runs),
               key=lambda p: (p[1].completion_time, p[0]))


@pytest.fixture(scope="module")
def tuned(machine):
    return tune(_workload(), machine, overlap=True, budget=0.10)


class TestFindsSweepOptimum:
    def test_matches_or_beats_exhaustive_sweep(self, tuned, sweep_best):
        _, best_run = sweep_best
        assert tuned.best.completion_time <= best_run.completion_time + 1e-15

    def test_within_ten_percent_of_sweep_work(self, tuned):
        assert tuned.steps_ratio <= 0.10 + 1e-12
        assert tuned.steps_spent <= tuned.budget_steps
        assert tuned.sweep_equivalent_steps == sweep_equivalent_steps(
            _workload()
        )

    def test_candidates_audited(self, tuned):
        assert tuned.candidates
        assert tuned.best in tuned.candidates
        assert tuned.steps_spent >= sum(c.tile_steps for c in tuned.candidates)
        assert {c.origin for c in tuned.candidates} & {"model", "golden"}

    def test_verdict_recorded_at_optimum(self, tuned):
        assert tuned.best.verdict in ("A", "B")

    def test_nonoverlap_schedule_also_searches(self, machine):
        res = tune(_workload(), machine, overlap=False, budget=0.10)
        assert res.overlap is False
        assert res.steps_ratio <= 0.10 + 1e-12


class TestBudgetSemantics:
    def test_absolute_budget(self, machine):
        res = tune(_workload(), machine, budget=600)
        assert res.budget_steps == 600

    def test_rejects_nonpositive_budget(self, machine):
        with pytest.raises(ValueError):
            tune(_workload(), machine, budget=0)
        with pytest.raises(ValueError):
            tune(_workload(), machine, budget=-0.5)

    def test_tiny_budget_still_returns_a_candidate(self, machine):
        # The first (model-prior) evaluation is exempt, so even an
        # absurdly small budget yields an answer instead of an error.
        res = tune(_workload(), machine, budget=1, use_probes=False)
        assert res.best is not None and res.candidates


class TestDeterminism:
    def test_serial_vs_pooled_byte_identical(self, machine, tmp_path):
        w = _workload()
        serial = tune(w, machine, budget=0.10,
                      engine=Engine(jobs=1, cache=SimCache(tmp_path / "s")))
        pooled = tune(w, machine, budget=0.10,
                      engine=Engine(jobs=2, cache=SimCache(tmp_path / "p")))
        assert serial.to_json() == pooled.to_json()

    def test_warm_cache_identical_and_fully_served(self, machine, tmp_path):
        w = _workload()
        engine = Engine(jobs=1, cache=SimCache(tmp_path / "warm"))
        cold = tune(w, machine, budget=0.10, engine=engine)
        warm = tune(w, machine, budget=0.10, engine=engine)
        assert warm.to_json() == cold.to_json()  # canonical form
        assert warm.sources.get("sim", 0) == 0  # no re-simulation
        assert cold.sources.get("sim", 0) > 0

    def test_uncached_repeat_identical(self, machine, tuned):
        again = tune(_workload(), machine, overlap=True, budget=0.10)
        assert again.to_json() == tuned.to_json()


class TestShapeSearch:
    @pytest.fixture(scope="class")
    def shaped(self, machine):
        return tune(_aniso(), machine, budget=0.10, shape=True)

    def test_beats_rectangular_base_grid(self, machine, shaped):
        rect = tune(_aniso(), machine, budget=0.10, shape=False)
        assert shaped.shape_searched and not rect.shape_searched
        assert shaped.best.completion_time <= rect.best.completion_time
        # On this anisotropic space the comm-minimal grid strictly wins.
        assert shaped.best.grid != _aniso().procs_per_dim

    def test_fraction_bound_reported(self, shaped):
        assert shaped.shape_fraction_bound is None or (
            0.0 < shaped.shape_fraction_bound < 1.0
        )

    def test_candidate_grids_are_labelled(self, shaped):
        grids = {c.grid for c in shaped.candidates}
        assert len(grids) >= 2  # base grid plus at least one alternative


class TestReport:
    def test_json_round_trip(self, tuned):
        doc = json.loads(tuned.to_json())
        assert doc["workload"] == "tune-w"
        assert doc["best"]["v"] == tuned.best.v
        assert len(doc["candidates"]) == len(tuned.candidates)
        assert "sources" not in doc  # canonical form is cache-independent

    def test_non_canonical_json_keeps_sources(self, tuned):
        doc = json.loads(tuned.to_json(canonical=False))
        assert "sources" in doc and "source" in doc["best"]

    def test_render_mentions_the_essentials(self, tuned):
        text = tuned.render()
        assert "autotune tune-w" in text
        assert f"V={tuned.best.v}" in text
        assert "exhaustive sweep" in text
