"""SVG figure rendering: valid XML, right structure, right content."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.figures import sweep
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled
from repro.sim.tracing import Trace
from repro.viz.svg import GANTT_COLORS, gantt_svg, sweep_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def sweep_result():
    w = StencilWorkload(
        "svg", IterationSpace.from_extents([8, 8, 512]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )
    return sweep(w, pentium_cluster(), heights=[16, 64, 128])


class TestSweepSvg:
    def test_valid_xml(self, sweep_result):
        root = ET.fromstring(sweep_svg(sweep_result))
        assert root.tag == f"{SVG_NS}svg"

    def test_two_series_by_default(self, sweep_result):
        root = ET.fromstring(sweep_svg(sweep_result))
        paths = root.findall(f"{SVG_NS}path")
        assert len(paths) == 2
        # One marker per point per series.
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == 2 * 3

    def test_model_curves_dashed(self, sweep_result):
        svg = sweep_svg(sweep_result, include_model=True)
        root = ET.fromstring(svg)
        dashed = [
            p for p in root.findall(f"{SVG_NS}path")
            if p.get("stroke-dasharray")
        ]
        assert len(dashed) == 2

    def test_labels_present(self, sweep_result):
        svg = sweep_svg(sweep_result, title="My Figure")
        assert "My Figure" in svg
        assert "tile height V" in svg
        assert "completion time" in svg

    def test_empty_rejected(self, sweep_result):
        from repro.experiments.figures import SweepResult

        empty = SweepResult("x", pentium_cluster(), ())
        with pytest.raises(ValueError):
            sweep_svg(empty)


class TestGanttSvg:
    def _trace(self):
        w = StencilWorkload(
            "g", IterationSpace.from_extents([8, 8, 256]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        return run_tiled(w, 64, pentium_cluster(), blocking=False,
                         trace=True).trace

    def test_valid_xml_with_rows(self):
        trace = self._trace()
        root = ET.fromstring(gantt_svg(trace, title="Overlap"))
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "P0" in texts and "P3" in texts
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) > 20  # background + many activity bars

    def test_activity_colors_used(self):
        svg = gantt_svg(self._trace())
        assert GANTT_COLORS["compute"] in svg
        assert GANTT_COLORS["fill_mpi_send"] in svg

    def test_tooltips_carry_timing(self):
        svg = gantt_svg(self._trace())
        assert "<title>compute" in svg

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            gantt_svg(Trace())

    def test_label_escaping(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1.0, label="<&>")
        svg = gantt_svg(t)
        assert "&lt;&amp;&gt;" in svg
        ET.fromstring(svg)  # still valid XML
