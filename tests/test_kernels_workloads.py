"""Tests for the paper's experiment workloads."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import (
    StencilWorkload,
    example1_workload,
    paper_experiment_i,
    paper_experiment_ii,
    paper_experiment_iii,
    paper_experiments,
)


class TestPaperWorkloads:
    def test_experiment_i_geometry(self):
        w = paper_experiment_i()
        assert w.space.extents == (16, 16, 16384)
        assert w.num_processors == 16
        assert w.mapped_dim == 2
        assert w.tile_sides(444) == (4, 4, 444)
        assert w.grain(444) == 7104

    def test_experiment_i_packet_size_matches_fig12(self):
        """Fig. 12: packet 7104 bytes at V = 444 (4·444 elements × 4 B)."""
        w = paper_experiment_i()
        faces = w.face_elements(444)
        assert faces == [4 * 444, 4 * 444]
        assert faces[0] * 4 == 7104

    def test_experiment_ii_geometry(self):
        w = paper_experiment_ii()
        assert w.space.extents == (16, 16, 32768)
        assert w.tile_sides(538 // 2 * 2) == (4, 4, 538)

    def test_experiment_iii_geometry(self):
        w = paper_experiment_iii()
        assert w.space.extents == (32, 32, 4096)
        assert w.tile_sides(164) == (8, 8, 164)
        assert w.grain(164) == 10496  # the paper's 10996 is a typo

    def test_all_three(self):
        names = [w.name for w in paper_experiments()]
        assert names == ["16x16x16384", "16x16x32768", "32x32x4096"]

    def test_example1_workload(self):
        w = example1_workload()
        assert w.space.extents == (10000, 1000)
        assert w.mapped_dim == 0
        assert set(w.deps.vectors) == {(1, 1), (1, 0), (0, 1)}


class TestWorkloadMechanics:
    def _small(self):
        return StencilWorkload(
            "small",
            IterationSpace.from_extents([8, 8, 64]),
            sqrt_kernel_3d(),
            (2, 2, 1),
            2,
        )

    def test_tiled_space_and_mapping(self):
        w = self._small()
        ts = w.tiled_space(16)
        assert ts.extents == (2, 2, 4)
        m = w.mapping(16)
        assert m.num_processors == 4
        assert m.tiles_per_processor == 4

    def test_valid_heights(self):
        w = self._small()
        assert w.valid_heights() == [1, 2, 4, 8, 16, 32, 64]
        assert w.valid_heights(minimum=4) == [4, 8, 16, 32, 64]

    def test_non_dividing_height_clips_last_tile(self):
        w = self._small()
        assert w.tile_sides(5) == (4, 4, 5)
        ranges = w.mapped_tile_ranges(5)
        assert ranges[0] == (0, 4)
        assert ranges[-1] == (60, 63)
        assert len(ranges) == 13

    def test_height_exceeding_extent_rejected(self):
        w = self._small()
        with pytest.raises(ValueError, match="exceeds"):
            w.tile_sides(65)

    def test_extent_must_divide_processors(self):
        with pytest.raises(ValueError, match="not divisible"):
            StencilWorkload(
                "bad",
                IterationSpace.from_extents([9, 8, 64]),
                sqrt_kernel_3d(),
                (2, 2, 1),
                2,
            )

    def test_mapped_dim_unsplit(self):
        with pytest.raises(ValueError, match="mapped dimension"):
            StencilWorkload(
                "bad",
                IterationSpace.from_extents([8, 8, 64]),
                sqrt_kernel_3d(),
                (2, 2, 2),
                2,
            )

    def test_kernel_space_mismatch(self):
        with pytest.raises(ValueError):
            StencilWorkload(
                "bad",
                IterationSpace.from_extents([8, 8]),
                sqrt_kernel_3d(),
                (2, 1),
                1,
            )

    def test_face_elements_scale_with_v(self):
        w = self._small()
        assert w.face_elements(8) == [4 * 8, 4 * 8]
        assert w.face_elements(16) == [4 * 16, 4 * 16]
