"""Generated mpi4py programs: executed on the fake backend, verified
against the sequential golden model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.fake_mpi import (
    FakeComm,
    FakeWorld,
    fake_mpi_module,
    run_generated_script,
)
from repro.codegen.mpi4py_gen import generate_mpi4py_program
from repro.ir.loopnest import IterationSpace
from repro.kernels.library import anisotropic_3d, lcs_kernel_2d
from repro.kernels.stencil import sequential_reference, sqrt_kernel_3d, sum_kernel_2d
from repro.kernels.workloads import StencilWorkload


def _w3d():
    return StencilWorkload(
        "g3", IterationSpace.from_extents([8, 8, 32]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


def _w2d():
    return StencilWorkload(
        "g2", IterationSpace.from_extents([32, 16]),
        sum_kernel_2d(), (1, 4), 0,
    )


class TestGeneratedSource:
    def test_compiles(self):
        src = generate_mpi4py_program(_w3d(), 8, blocking=False)
        compile(src, "<gen>", "exec")

    def test_self_contained_imports(self):
        src = generate_mpi4py_program(_w3d(), 8, blocking=False)
        assert "from mpi4py import MPI" in src
        assert "import numpy as np" in src
        assert "repro" not in src  # no dependence on this library

    def test_blocking_uses_blocking_primitives(self):
        src = generate_mpi4py_program(_w3d(), 8, blocking=True)
        assert "comm.recv(" in src and "comm.send(" in src
        assert "comm.irecv(" not in src

    def test_pipelined_uses_nonblocking_primitives(self):
        src = generate_mpi4py_program(_w3d(), 8, blocking=False)
        assert "comm.isend(" in src and "comm.irecv(" in src
        assert "MPI.Request.waitall" in src
        assert "prologue" in src and "epilogue" in src

    def test_mpiexec_hint(self):
        src = generate_mpi4py_program(_w3d(), 8, blocking=False)
        assert "mpiexec -n 4" in src

    def test_multi_cross_dependence_rejected(self):
        from repro.kernels.stencil import StencilKernel

        k = StencilKernel(
            "bad", ((0, -1, -1), (-1, 0, 0)), lambda v: v[0] + v[1],
            combine_source=lambda r: " + ".join(r),
        )
        w = StencilWorkload(
            "bad", IterationSpace.from_extents([8, 8, 8]), k, (1, 2, 2), 0,
        )
        with pytest.raises(ValueError, match="crosses more than one"):
            generate_mpi4py_program(w, 4, blocking=False)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_mpi4py_program(_w3d(), 0, blocking=True)


class TestExecutedOnFakeMpi:
    @pytest.mark.parametrize("blocking", [True, False])
    def test_3d_matches_reference(self, blocking):
        w = _w3d()
        src = generate_mpi4py_program(w, 8, blocking=blocking)
        out = run_generated_script(src, w.num_processors)
        assert np.array_equal(out, sequential_reference(w.kernel, w.space))

    @pytest.mark.parametrize("blocking", [True, False])
    def test_2d_diagonal_matches_reference(self, blocking):
        w = _w2d()
        src = generate_mpi4py_program(w, 4, blocking=blocking)
        out = run_generated_script(src, w.num_processors)
        assert np.array_equal(out, sequential_reference(w.kernel, w.space))

    def test_non_dividing_height(self):
        w = _w3d()
        src = generate_mpi4py_program(w, 7, blocking=False)
        out = run_generated_script(src, w.num_processors)
        assert np.array_equal(out, sequential_reference(w.kernel, w.space))

    def test_library_kernels(self):
        for kernel, extents, procs, md in (
            (lcs_kernel_2d(), (16, 16), (1, 4), 0),
            (anisotropic_3d(), (8, 8, 16), (2, 2, 1), 2),
        ):
            w = StencilWorkload("lib", IterationSpace.from_extents(list(extents)),
                                kernel, procs, md)
            src = generate_mpi4py_program(w, 4, blocking=False)
            out = run_generated_script(src, w.num_processors)
            assert np.array_equal(
                out, sequential_reference(w.kernel, w.space)
            ), kernel.name

    def test_matches_simulator_numeric_run(self):
        from repro.model.machine import pentium_cluster
        from repro.runtime.executor import run_tiled

        w = _w3d()
        src = generate_mpi4py_program(w, 8, blocking=False)
        gen = run_generated_script(src, w.num_processors)
        sim = run_tiled(w, 8, pentium_cluster(), blocking=False, numeric=True)
        assert np.array_equal(gen, sim.result)


class TestFakeMpiPrimitives:
    def test_point_to_point(self):
        world = FakeWorld(2)
        c0, c1 = FakeComm(world, 0), FakeComm(world, 1)
        c0.send({"x": 1}, dest=1, tag=3)
        assert c1.recv(source=0, tag=3) == {"x": 1}

    def test_isend_irecv_waitall(self):
        world = FakeWorld(2)
        c0, c1 = FakeComm(world, 0), FakeComm(world, 1)
        c0.isend("a", dest=1).wait()
        req = c1.irecv(source=0)
        mpi = fake_mpi_module().MPI
        assert mpi.Request.waitall([req]) == ["a"]

    def test_numpy_payload_copied(self):
        world = FakeWorld(2)
        c0, c1 = FakeComm(world, 0), FakeComm(world, 1)
        arr = np.ones(3)
        c0.send(arr, dest=1)
        arr[0] = 99
        assert c1.recv(source=0)[0] == 1.0

    def test_size_rank(self):
        world = FakeWorld(3)
        assert FakeComm(world, 2).Get_rank() == 2
        assert FakeComm(world, 2).Get_size() == 3

    def test_world_validation(self):
        with pytest.raises(ValueError):
            FakeWorld(0)


class TestRandomizedGeneratedPrograms:
    @given(
        st.integers(2, 4),   # processors
        st.integers(2, 4),   # tiles of cross extent per processor
        st.integers(6, 24),  # mapped extent
        st.integers(1, 24),  # tile height (clipped to extent below)
        st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_2d_geometry(self, procs, per, depth, v, blocking):
        v = min(v, depth)
        w = StencilWorkload(
            "rand", IterationSpace.from_extents([depth, procs * per]),
            sum_kernel_2d(), (1, procs), 0,
        )
        src = generate_mpi4py_program(w, v, blocking=blocking)
        out = run_generated_script(src, w.num_processors)
        assert np.array_equal(out, sequential_reference(w.kernel, w.space))
