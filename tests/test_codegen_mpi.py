"""Structural tests of the emitted SPMD MPI listings."""

import re

import pytest

from repro.codegen.mpi_c import (
    generate_proc_b,
    generate_proc_nb,
    generate_spmd_program,
)
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d, sum_kernel_2d
from repro.kernels.workloads import StencilWorkload, paper_experiment_i


def _w3d():
    return StencilWorkload(
        "w", IterationSpace.from_extents([8, 8, 64]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


class TestProcB:
    def test_order_recv_compute_send(self):
        src = generate_proc_b(_w3d(), 8)
        recv = src.index("MPI_Recv")
        comp = src.index("compute(")
        send = src.index("MPI_Send")
        assert recv < comp < send

    def test_one_primitive_per_direction(self):
        src = generate_proc_b(_w3d(), 8)
        assert src.count("MPI_Recv") == 2  # two communicating dims
        assert src.count("MPI_Send") == 2
        assert "MPI_Isend" not in src
        assert "MPI_Wait" not in src

    def test_tags_are_dimensions(self):
        src = generate_proc_b(_w3d(), 8)
        assert "/*tag=*/0" in src and "/*tag=*/1" in src

    def test_tile_count_in_loop(self):
        src = generate_proc_b(_w3d(), 8)
        assert "m < 8" in src  # 64 / 8 tiles


class TestProcNB:
    def test_paper_ordering_isend_irecv_compute_wait(self):
        """The pipelined loop body: Isend(m-1), Irecv(m+1), compute(m),
        Waitall — the paper's ProcNB order."""
        src = generate_proc_nb(_w3d(), 8)
        body = src.split("for (int m", 1)[1]
        isend = body.index("MPI_Isend")
        irecv = body.index("MPI_Irecv")
        comp = body.index("compute(")
        wait = body.index("MPI_Waitall")
        assert isend < irecv < comp < wait

    def test_prologue_and_epilogue_present(self):
        src = generate_proc_nb(_w3d(), 8)
        assert "prologue" in src
        assert "epilogue" in src
        pro = src.split("for (int m")[0]
        assert "MPI_Irecv" in pro and "MPI_Waitall" in pro

    def test_m_offsets(self):
        src = generate_proc_nb(_w3d(), 8)
        assert "tiles[m-1]" in src  # sends previous tile's results
        assert "ghost[0](m+1)" in src  # receives next tile's ghosts

    def test_blocking_primitives_absent(self):
        src = generate_proc_nb(_w3d(), 8)
        assert "MPI_Recv(" not in src.replace("MPI_Irecv(", "")
        assert re.search(r"\bMPI_Send\(", src) is None

    def test_request_array_size(self):
        src = generate_proc_nb(_w3d(), 8)
        assert "MPI_Request req[4];" in src  # 2 dims × (send + recv)


class TestFullProgram:
    def test_contains_main_and_routine(self):
        for blocking, name in ((True, "ProcB"), (False, "ProcNB")):
            src = generate_spmd_program(_w3d(), 8, blocking=blocking)
            assert f"void {name}(" in src
            assert "int main(" in src
            assert "MPI_Init" in src and "MPI_Finalize" in src
            assert f"{name}(coords" in src

    def test_paper_workload_header(self):
        src = generate_spmd_program(paper_experiment_i(), 444, blocking=False)
        assert "16x16x16384" in src
        assert "4x4x444" in src
        assert "4x4" in src

    def test_2d_single_neighbor(self):
        w = StencilWorkload(
            "w2", IterationSpace.from_extents([64, 16]),
            sum_kernel_2d(), (1, 2), 0,
        )
        src = generate_proc_nb(w, 8)
        # One communicating dimension → one Isend + one Irecv per step.
        body = src.split("for (int m", 1)[1].split("epilogue", 1)[0]
        assert body.count("MPI_Isend") == 1
        assert body.count("MPI_Irecv") == 1
        assert "MPI_Request req[2];" in src
