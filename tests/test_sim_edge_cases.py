"""Edge cases of the simulator and SimMPI layer."""

import pytest

from repro.model.machine import Machine
from repro.sim.mpi import World


def _machine(**kw):
    defaults = dict(t_c=1.0, t_s=2.0, t_t=1e-3)
    defaults.update(kw)
    return Machine(**defaults)


class TestZeroCosts:
    def test_zero_byte_message(self):
        w = World(_machine(), 2)
        got = []

        def sender(ctx):
            yield ctx.isend(1, 0, payload="tiny")

        def receiver(ctx):
            got.append((yield ctx.recv(0, 0)))

        w.run([sender, receiver])
        assert got == ["tiny"]

    def test_zero_compute(self):
        w = World(_machine(), 1)
        done = []

        def prog(ctx):
            yield ctx.compute_seconds(0.0)
            done.append(ctx.world.sim.now)

        w.run([prog])
        assert done == [0.0]

    def test_free_machine_still_ordered(self):
        free = Machine(t_c=1e-9, t_s=0.0, t_t=0.0)
        w = World(free, 2)
        got = []

        def sender(ctx):
            for k in range(5):
                yield ctx.isend(1, 0, payload=k)

        def receiver(ctx):
            for _ in range(5):
                got.append((yield ctx.recv(0, 0)))

        w.run([sender, receiver])
        assert got == [0, 1, 2, 3, 4]


class TestSelfMessaging:
    def test_loopback_send_recv(self):
        w = World(_machine(), 1)
        got = []

        def prog(ctx):
            yield ctx.send(0, 100, payload="self")
            got.append((yield ctx.recv(0, 100)))

        w.run([prog])
        assert got == ["self"]

    def test_loopback_isend(self):
        w = World(_machine(), 1)
        got = []

        def prog(ctx):
            req = yield ctx.isend(0, 100, payload=42)
            yield ctx.wait(req)
            got.append((yield ctx.recv(0, 100)))

        w.run([prog])
        assert got == [42]


class TestBarrierReuse:
    def test_two_consecutive_barriers(self):
        w = World(_machine(), 3)
        times = []

        def prog(delay):
            def program(ctx):
                yield ctx.compute_seconds(delay)
                yield ctx.barrier()
                yield ctx.compute_seconds(delay)
                yield ctx.barrier()
                times.append(ctx.world.sim.now)

            return program

        w.run([prog(1.0), prog(2.0), prog(3.0)])
        assert times == [pytest.approx(6.0)] * 3


class TestTagInterleaving:
    def test_out_of_order_tag_consumption(self):
        """Messages on different tags can be consumed in any order even
        when they arrived interleaved."""
        w = World(_machine(), 2)
        got = []

        def sender(ctx):
            for k in range(3):
                yield ctx.isend(1, 10, payload=f"a{k}", tag=0)
                yield ctx.isend(1, 10, payload=f"b{k}", tag=1)

        def receiver(ctx):
            for k in range(3):
                got.append((yield ctx.recv(0, 10, tag=1)))
            for k in range(3):
                got.append((yield ctx.recv(0, 10, tag=0)))

        w.run([sender, receiver])
        assert got == ["b0", "b1", "b2", "a0", "a1", "a2"]


class TestRunGuards:
    def test_max_events_guard_on_world(self):
        w = World(_machine(t_s=0.0), 2)

        def chatter(ctx):
            while True:
                yield ctx.isend(1, 0)

        def sink(ctx):
            while True:
                yield ctx.recv(0, 0)

        with pytest.raises(RuntimeError, match="livelock"):
            w.run([chatter, sink], max_events=5000)

    def test_world_not_reusable_across_runs(self):
        """A second run() on the same world with new programs works only
        through fresh spawns; finished processes stay finished."""
        w = World(_machine(), 1)

        def prog(ctx):
            yield ctx.compute_seconds(1.0)

        w.run([prog])
        first = [p.finished for p in w.sim.processes]
        assert first == [True]


class TestPayloadEdge:
    def test_none_payload_roundtrip(self):
        w = World(_machine(), 2)
        got = []

        def sender(ctx):
            yield ctx.isend(1, 10)  # payload defaults to None

        def receiver(ctx):
            got.append((yield ctx.recv(0, 10)))

        w.run([sender, receiver])
        assert got == [None]

    def test_large_fan_in(self):
        w = World(_machine(), 5)
        got = []

        def make_sender(rank):
            def sender(ctx):
                yield ctx.isend(4, 10, payload=rank)

            return sender

        def receiver(ctx):
            for src in range(4):
                got.append((yield ctx.recv(src, 10)))

        w.run([make_sender(r) for r in range(4)] + [receiver])
        assert got == [0, 1, 2, 3]
