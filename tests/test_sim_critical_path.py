"""Critical-path extraction: synthetic chains, real runs, eq. (3)/(4) checks."""

import pytest

from repro.experiments.figures import analytic_step
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload, paper_experiment_i
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled, run_tiled_robust
from repro.sim.critical_path import CriticalPath, analyze_critical_path
from repro.sim.faults import FaultPlan
from repro.sim.reliable import ReliableConfig
from repro.sim.steady import steady_period
from repro.sim.tracing import Trace


class TestSyntheticChains:
    def test_empty_trace(self):
        cp = analyze_critical_path(Trace())
        assert cp.chain == ()
        assert cp.makespan == 0.0
        assert cp.overlap_efficiency == 0.0

    def test_single_record(self):
        t = Trace()
        t.add(0, "compute", 0.0, 2.0)
        cp = analyze_critical_path(t)
        assert len(cp.chain) == 1
        assert cp.term_seconds == {"A2": 2.0}
        assert cp.bound == "A"
        assert cp.idle_seconds == 0.0
        assert cp.overlap_efficiency == pytest.approx(1.0)

    def test_pipeline_handoff_chain(self):
        # compute -> fill -> dma -> tx wire -> rx wire -> dma -> compute,
        # the paper's full send pipeline across two ranks.
        t = Trace(num_ranks=2)
        t.add(0, "compute", 0.0, 1.0)
        t.add(0, "fill_mpi_send", 1.0, 1.2, "m")
        t.add(0, "kernel_copy", 1.2, 1.5, "m", resource="dma", term="B3")
        t.add(0, "wire", 1.5, 2.0, "m", resource="nic_tx", term="B4")
        t.add(0, "in_flight", 1.5, 2.5, "m", resource="link", term="")
        t.add(1, "wire", 2.0, 2.5, "m", resource="nic_rx", term="B1")
        t.add(1, "kernel_copy", 2.5, 2.8, "m", resource="dma", term="B2")
        t.add(1, "compute", 2.8, 3.8)
        cp = analyze_critical_path(t)
        assert [r.kind for r in cp.chain] == [
            "compute", "fill_mpi_send", "kernel_copy", "wire", "wire",
            "kernel_copy", "compute",
        ]
        assert cp.idle_seconds == pytest.approx(0.0)
        assert cp.chain_a_seconds == pytest.approx(2.2)
        assert cp.chain_b_seconds == pytest.approx(1.6)
        assert cp.bound == "A"

    def test_work_preferred_over_blocked(self):
        t = Trace()
        t.add(0, "blocked_recv", 0.0, 2.0)
        t.add(0, "kernel_copy", 1.0, 2.0, resource="dma", term="B2")
        t.add(0, "compute", 2.0, 3.0)
        cp = analyze_critical_path(t)
        assert cp.chain[-2].kind == "kernel_copy"
        assert cp.blocked_seconds == 0.0

    def test_gap_counted_as_idle(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        t.add(0, "compute", 1.5, 3.0)
        cp = analyze_critical_path(t)
        assert cp.idle_seconds == pytest.approx(0.5)
        assert len(cp.chain) == 2

    def test_records_past_makespan_ignored(self):
        # ARQ backoff churn after the last rank finishes leaves records
        # past the makespan; they must not seed the walk.
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        t.add(0, "wire", 5.0, 6.0, resource="nic_tx", term="B4")
        cp = analyze_critical_path(t, makespan=1.0)
        assert [r.kind for r in cp.chain] == ["compute"]
        assert cp.idle_seconds + sum(
            r.duration for r in cp.chain
        ) <= 1.0 + 1e-9

    def test_describe_mentions_bound(self):
        t = Trace(num_ranks=1)
        t.add(0, "compute", 0.0, 2.0)
        cp = analyze_critical_path(t)
        text = cp.describe()
        assert "A-bound" in text
        assert "rank 0" in text
        assert cp.summarize_chain()


class TestRealRuns:
    def _run(self, blocking: bool):
        w = StencilWorkload(
            "cp", IterationSpace.from_extents([8, 8, 2048]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        return run_tiled(w, 128, pentium_cluster(), blocking=blocking,
                         trace=True)

    def test_overlap_run_chain_covers_makespan(self):
        run = self._run(blocking=False)
        cp = run.critical_path()
        assert isinstance(cp, CriticalPath)
        assert cp.makespan == pytest.approx(run.completion_time)
        on_chain = (cp.chain_a_seconds + cp.chain_b_seconds
                    + cp.blocked_seconds + cp.other_seconds
                    + cp.idle_seconds)
        assert on_chain == pytest.approx(cp.makespan, rel=1e-6)
        assert cp.rank_steps[0] > 0

    def test_untraced_run_has_no_critical_path(self):
        w = StencilWorkload(
            "cp", IterationSpace.from_extents([4, 4, 512]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        run = run_tiled(w, 64, pentium_cluster(), blocking=False)
        assert run.critical_path() is None

    def test_run_outcome_carries_critical_path(self):
        w = StencilWorkload(
            "cp", IterationSpace.from_extents([4, 4, 1024]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        run = run_tiled_robust(
            w, 64, pentium_cluster(), blocking=False, trace=True,
            faults=FaultPlan(seed=5, drop_prob=0.1),
            reliable=ReliableConfig(),
        )
        assert run.outcome.completed
        cp = run.outcome.critical_path
        assert cp is not None
        assert run.critical_path() is cp
        assert cp.makespan == pytest.approx(run.completion_time)
        assert "critical path" in run.outcome.describe()

    def test_untraced_outcome_has_no_critical_path(self):
        w = StencilWorkload(
            "cp", IterationSpace.from_extents([4, 4, 512]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        run = run_tiled_robust(w, 64, pentium_cluster(), blocking=False)
        assert run.outcome.critical_path is None


@pytest.mark.trace
@pytest.mark.slow
class TestPaperExperimentI:
    """Acceptance checks for experiment (i) at its measured t_opt
    (V=192): measured term attribution vs eq. (4)/(3)."""

    V_OPT = 192
    INTERIOR_RANK = 5  # coords (1,1) of the 4x4 grid: full neighbour set

    def _sides_per_step(self, run):
        rank = self.INTERIOR_RANK
        steps = sum(
            1 for r in run.trace.for_rank(rank, "cpu") if r.kind == "compute"
        )
        a, b = run.trace.side_seconds(rank)
        return a / steps, b / steps, steps

    def test_overlap_a_bound_and_eq4_terms(self):
        w = paper_experiment_i()
        m = pentium_cluster()
        sc = analytic_step(w, m, self.V_OPT)
        run = run_tiled(w, self.V_OPT, m, blocking=False, trace=True)
        cp = run.critical_path()
        # The chain is CPU work: the overlap schedule is A-bound.
        assert cp.bound == "A"
        a, b, _ = self._sides_per_step(run)
        assert max(a, b) == pytest.approx(
            max(sc.cpu_side, sc.comm_side), rel=0.05
        )
        assert a == pytest.approx(sc.cpu_side, rel=0.05)
        assert b == pytest.approx(sc.comm_side, rel=0.05)
        # The steady period tracks the CPU side (comm hides under it).
        per = steady_period(run.trace, rank=self.INTERIOR_RANK)
        assert per == pytest.approx(sc.cpu_side, rel=0.05)

    def test_nonoverlap_eq3_step(self):
        w = paper_experiment_i()
        m = pentium_cluster()
        sc = analytic_step(w, m, self.V_OPT)
        run = run_tiled(w, self.V_OPT, m, blocking=True, trace=True)
        rank = self.INTERIOR_RANK
        terms = run.trace.term_seconds(rank)
        _, _, steps = self._sides_per_step(run)
        # Eq. (3) step = Tcomp + Tcomm = A1+A2+A3 + B2+B3+B4 (B1 rides
        # the receiver's NIC under the sender's B4 across the link).
        measured = sum(
            terms.get(t, 0.0) for t in ("A1", "A2", "A3", "B2", "B3", "B4")
        ) / steps
        assert measured == pytest.approx(sc.serialized_step, rel=0.05)
        # The observed steady period sits at the warm step (the next
        # message's B2 overlaps the current blocked send) — costs.py
        # documents this convergence.
        per = steady_period(run.trace, rank=rank)
        assert per == pytest.approx(sc.warm_serialized_step, rel=0.05)
