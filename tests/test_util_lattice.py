"""Hermite normal form, unimodularity, lattice equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intmat import FractionMatrix, identity
from repro.util.lattice import (
    column_hermite_normal_form,
    is_unimodular,
    same_lattice,
)


class TestUnimodular:
    def test_identity(self):
        assert is_unimodular(identity(3))

    def test_shear(self):
        assert is_unimodular(FractionMatrix([[1, 5], [0, 1]]))

    def test_negative_det(self):
        assert is_unimodular(FractionMatrix([[0, 1], [1, 0]]))

    def test_non_unimodular(self):
        assert not is_unimodular(FractionMatrix([[2, 0], [0, 1]]))

    def test_fractional_rejected(self):
        assert not is_unimodular(FractionMatrix([["1/2", 0], [0, 2]]))

    def test_nonsquare(self):
        assert not is_unimodular(FractionMatrix([[1, 0, 0], [0, 1, 0]]))


class TestHNF:
    def test_already_diagonal(self):
        d = FractionMatrix([[4, 0], [0, 6]])
        assert column_hermite_normal_form(d) == d

    def test_lower_triangular_with_reduced_entries(self):
        m = FractionMatrix([[4, 4], [0, 4]])
        h = column_hermite_normal_form(m)
        assert h == FractionMatrix([[4, 0], [0, 4]])

    def test_negative_columns_normalised(self):
        m = FractionMatrix([[-3, 0], [0, -5]])
        h = column_hermite_normal_form(m)
        assert h == FractionMatrix([[3, 0], [0, 5]])

    def test_shape_properties(self):
        m = FractionMatrix([[6, 4, 2], [2, 8, 5], [0, 2, 9]])
        h = column_hermite_normal_form(m)
        # Lower triangular with positive diagonal.
        for i in range(3):
            assert h[i, i] > 0
            for j in range(i + 1, 3):
                assert h[i, j] == 0
        # Entries left of each diagonal reduced into [0, diag).
        for i in range(3):
            for j in range(i):
                assert 0 <= h[i, j] < h[i, i]

    def test_determinant_preserved_up_to_sign(self):
        m = FractionMatrix([[6, 4], [2, 8]])
        h = column_hermite_normal_form(m)
        assert abs(h.determinant()) == abs(m.determinant())

    def test_validation(self):
        with pytest.raises(ValueError):
            column_hermite_normal_form(FractionMatrix([[1, 1], [1, 1]]))
        with pytest.raises(ValueError):
            column_hermite_normal_form(FractionMatrix([["1/2", 0], [0, 1]]))
        with pytest.raises(ValueError):
            column_hermite_normal_form(FractionMatrix([[1, 0, 0], [0, 1, 0]]))


class TestSameLattice:
    def test_rebasis_detected(self):
        a = FractionMatrix([[4, 0], [0, 4]])
        b = FractionMatrix([[4, 4], [0, 4]])  # second column re-based
        assert same_lattice(a, b)

    def test_sublattice_rejected(self):
        a = FractionMatrix([[4, 0], [0, 4]])
        c = FractionMatrix([[4, 2], [0, 4]])  # contains (2,4): finer
        assert not same_lattice(a, c)

    def test_shape_mismatch(self):
        assert not same_lattice(identity(2), identity(3))


_entries = st.integers(-5, 5)


def _matrix2():
    return st.lists(
        st.lists(_entries, min_size=2, max_size=2), min_size=2, max_size=2
    ).map(FractionMatrix).filter(lambda m: m.determinant() != 0)


def _unimodular2():
    """Random products of elementary unimodular matrices."""
    shear = st.integers(-3, 3).map(
        lambda k: FractionMatrix([[1, k], [0, 1]])
    )
    shear_t = st.integers(-3, 3).map(
        lambda k: FractionMatrix([[1, 0], [k, 1]])
    )
    swap = st.just(FractionMatrix([[0, 1], [1, 0]]))
    neg = st.just(FractionMatrix([[-1, 0], [0, 1]]))
    factor = st.one_of(shear, shear_t, swap, neg)
    return st.lists(factor, min_size=1, max_size=4).map(
        lambda fs: _prod(fs)
    )


def _prod(factors):
    out = identity(2)
    for f in factors:
        out = out @ f
    return out


class TestProperties:
    @given(_matrix2(), _unimodular2())
    @settings(max_examples=60, deadline=None)
    def test_hnf_invariant_under_unimodular_column_ops(self, m, u):
        """HNF(A·U) = HNF(A) for unimodular U — the defining property."""
        assert is_unimodular(u)
        assert column_hermite_normal_form(m @ u) == (
            column_hermite_normal_form(m)
        )

    @given(_matrix2(), _unimodular2())
    @settings(max_examples=60, deadline=None)
    def test_same_lattice_closed_under_rebasis(self, m, u):
        assert same_lattice(m, m @ u)

    @given(_matrix2())
    @settings(max_examples=60, deadline=None)
    def test_hnf_idempotent(self, m):
        h = column_hermite_normal_form(m)
        assert column_hermite_normal_form(h) == h

    @given(_matrix2())
    @settings(max_examples=60, deadline=None)
    def test_scaling_changes_lattice(self, m):
        assert not same_lattice(m, m.scale(2))
