"""The checked-in API reference must match the code's public surface."""

import pathlib
import subprocess
import sys


def test_api_docs_current():
    script = pathlib.Path(__file__).parent.parent / "scripts" / "gen_api_docs.py"
    result = subprocess.run(
        [sys.executable, str(script), "--check"],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr


def test_api_docs_cover_all_subpackages():
    api = (pathlib.Path(__file__).parent.parent / "docs" / "api.md").read_text()
    for mod in ("repro.ir", "repro.tiling", "repro.schedule", "repro.model",
                "repro.sim", "repro.runtime", "repro.kernels",
                "repro.codegen", "repro.experiments", "repro.uetuct",
                "repro.viz", "repro.util"):
        assert f"## `{mod}`" in api
