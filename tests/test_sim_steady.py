"""Steady-state period extraction and Chrome-trace export."""

import json

import pytest

from repro.experiments.figures import analytic_step
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled
from repro.sim.steady import analyze, compute_starts, steady_period
from repro.sim.tracing import Trace


def _deep_run(blocking: bool):
    w = StencilWorkload(
        "deep", IterationSpace.from_extents([12, 12, 4096]),
        sqrt_kernel_3d(), (3, 3, 1), 2,
    )
    m = pentium_cluster()
    return w, m, run_tiled(w, 128, m, blocking=blocking, trace=True)


class TestSteadyPeriod:
    def test_overlap_period_matches_pipelined_step(self):
        w, m, run = _deep_run(blocking=False)
        sc = analytic_step(w, m, 128)
        period = steady_period(run.trace, rank=4)  # interior rank
        assert period == pytest.approx(sc.pipelined_step, rel=0.02)

    def test_blocking_period_matches_warm_step(self):
        w, m, run = _deep_run(blocking=True)
        sc = analytic_step(w, m, 128)
        warm = sc.cpu_side + sc.b3_fill_kernel_send + sc.b4_transmit
        period = steady_period(run.trace, rank=4)
        assert period == pytest.approx(warm, rel=0.05)

    def test_analyze_report(self):
        _, _, run = _deep_run(blocking=False)
        rep = analyze(run.trace)
        assert rep.fill_time > 0
        assert rep.completion_time == pytest.approx(run.completion_time)
        assert 0.5 < rep.steady_fraction <= 1.0
        assert set(rep.per_rank_period) == set(run.trace.ranks())
        assert rep.mean_period == pytest.approx(
            sum(rep.per_rank_period.values()) / len(rep.per_rank_period)
        )

    def test_validation(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        with pytest.raises(ValueError, match="at least 4"):
            steady_period(t, 0)
        with pytest.raises(ValueError):
            steady_period(t, 0, discard_fraction=0.7)
        with pytest.raises(ValueError, match="empty"):
            analyze(Trace())

    def test_compute_starts_ordering(self):
        t = Trace()
        for k in range(5):
            t.add(0, "compute", float(k), float(k) + 0.5)
            t.add(0, "blocked_recv", float(k) + 0.5, float(k) + 1.0)
        assert compute_starts(t, 0) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert steady_period(t, 0) == pytest.approx(1.0)


class TestChromeTraceExport:
    def test_events_structure(self):
        t = Trace()
        t.add(1, "compute", 1e-6, 3e-6, "tile0")
        t.add(0, "fill_mpi_send", 0.0, 1e-6)
        events = t.to_chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        # one process_name (cpu only) + two thread_name records
        assert len(meta) == 3
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "CPU"
        assert len(xs) == 2
        ev = xs[0]
        assert ev["tid"] == 1
        assert ev["pid"] == 0
        assert ev["name"] == "tile0"
        assert ev["ts"] == pytest.approx(1.0)
        assert ev["dur"] == pytest.approx(2.0)

    def test_dump_roundtrip(self, tmp_path):
        t = Trace()
        t.add(0, "compute", 0.0, 1e-6)
        path = tmp_path / "trace.json"
        t.dump_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        xs = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 1
        assert xs[0]["cat"] == "compute"
        assert xs[0]["args"]["term"] == "A2"
