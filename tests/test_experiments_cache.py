"""Tests for the persistent simulation result cache."""

import dataclasses
import json

from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    SimCache,
    default_cache_dir,
    key_digest,
    run_key,
)
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster


def _workload():
    return StencilWorkload(
        "w", IterationSpace.from_extents([8, 8, 512]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


PAYLOAD = {"completion_time": 1.25, "messages_sent": 7, "grain": 128,
           "network_stats": {}, "method": "sim", "used_fastforward": False}


class TestRunKey:
    def test_contains_everything_that_determines_timing(self):
        spec = run_key(_workload(), 64, pentium_cluster(), blocking=True)
        assert spec["schema"] == CACHE_SCHEMA_VERSION
        assert spec["v"] == 64
        assert spec["blocking"] is True
        assert spec["method"] == "sim"
        assert spec["extents"] == [8, 8, 512]
        assert spec["machine"]  # every machine parameter, not a name
        json.dumps(spec)  # must be JSON-serialisable as-is

    def test_distinguishes_v_schedule_and_method(self):
        w, m = _workload(), pentium_cluster()
        base = run_key(w, 64, m, blocking=True)
        assert run_key(w, 32, m, blocking=True) != base
        assert run_key(w, 64, m, blocking=False) != base
        assert run_key(w, 64, m, blocking=True, method="ff1") != base


class TestSimCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = SimCache(tmp_path)
        spec = run_key(_workload(), 64, pentium_cluster(), blocking=True)
        assert cache.get(spec) is None
        cache.put(spec, PAYLOAD)
        assert cache.get(spec) == PAYLOAD
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert "1 hits / 1 misses" in cache.stats.describe()

    def test_machine_parameter_invalidates(self, tmp_path):
        cache = SimCache(tmp_path)
        w, m = _workload(), pentium_cluster()
        spec = run_key(w, 64, m, blocking=True)
        cache.put(spec, PAYLOAD)
        field = dataclasses.fields(m)[0].name
        faster = dataclasses.replace(m, **{field: getattr(m, field) * 2})
        assert cache.get(run_key(w, 64, faster, blocking=True)) is None

    def test_schema_version_invalidates(self, tmp_path):
        cache = SimCache(tmp_path)
        spec = run_key(_workload(), 64, pentium_cluster(), blocking=True)
        cache.put(spec, PAYLOAD)
        stale = dict(spec, schema=CACHE_SCHEMA_VERSION + 1)
        assert cache.get(stale) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = SimCache(tmp_path)
        spec = run_key(_workload(), 64, pentium_cluster(), blocking=True)
        cache.put(spec, PAYLOAD)
        cache._entry_path(spec).write_text("{not json")
        assert cache.get(spec) is None
        assert cache.stats.errors == 1
        # A non-dict payload is equally rejected.
        cache._entry_path(spec).write_text(json.dumps({"payload": [1, 2]}))
        assert cache.get(spec) is None
        assert cache.stats.errors == 2

    def test_half_written_entry_is_a_counted_miss(self, tmp_path):
        """A crash mid-write leaves truncated JSON; reads must treat it
        as a miss and bump the dedicated corruption counter."""
        cache = SimCache(tmp_path)
        spec = run_key(_workload(), 64, pentium_cluster(), blocking=True)
        cache.put(spec, PAYLOAD)
        entry = cache._entry_path(spec)
        raw = entry.read_text()
        entry.write_text(raw[: len(raw) // 2])  # half-written entry
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.errors == 1
        assert cache.stats.misses == 1
        assert "1 corrupt" in cache.stats.describe()
        # Re-simulating and re-storing heals the entry.
        cache.put(spec, PAYLOAD)
        assert cache.get(spec) == PAYLOAD
        assert cache.stats.corrupt == 1

    def test_put_is_atomic_tmp_plus_rename(self, tmp_path):
        """No reader can ever observe a partial entry: the payload lands
        under a tmp name and is renamed into place."""
        cache = SimCache(tmp_path)
        spec = run_key(_workload(), 64, pentium_cluster(), blocking=True)
        cache.put(spec, PAYLOAD)
        leftovers = [
            p for p in tmp_path.rglob("*") if ".tmp" in p.name
        ]
        assert leftovers == []
        assert cache.get(spec) == PAYLOAD

    def test_key_digest_stable_and_order_independent(self):
        spec = run_key(_workload(), 64, pentium_cluster(), blocking=True)
        shuffled = dict(reversed(list(spec.items())))
        assert key_digest(spec) == key_digest(shuffled)
        assert len(key_digest(spec)) == 64  # sha256 hex

    def test_unwritable_location_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        cache = SimCache(blocker / "nested")  # parent is a regular file
        spec = run_key(_workload(), 64, pentium_cluster(), blocking=True)
        cache.put(spec, PAYLOAD)  # swallowed
        assert cache.get(spec) is None
        assert cache.stats.errors >= 1

    def test_clear(self, tmp_path):
        cache = SimCache(tmp_path)
        w, m = _workload(), pentium_cluster()
        for v in (16, 32, 64):
            cache.put(run_key(w, v, m, blocking=True), PAYLOAD)
        assert cache.clear() == 3
        assert cache.get(run_key(w, 16, m, blocking=True)) is None


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "simcache"


class TestStats:
    def test_lookups(self):
        s = CacheStats(hits=3, misses=2)
        assert s.lookups == 5
