"""Numerical verification: distributed runs equal the sequential golden
model, for both schedules, several workload shapes and tile heights."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d, sum_kernel_2d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.verify import verify_against_reference, verify_workload


def _w3d(extents=(8, 8, 32), procs=(2, 2, 1)):
    return StencilWorkload(
        "w3d", IterationSpace.from_extents(list(extents)),
        sqrt_kernel_3d(), procs, 2,
    )


def _w2d(extents=(32, 8), procs=(1, 2)):
    """Example-1-style 2-D workload with a diagonal dependence (1,1)."""
    return StencilWorkload(
        "w2d", IterationSpace.from_extents(list(extents)),
        sum_kernel_2d(), procs, 0,
    )


class TestVerify3D:
    @pytest.mark.parametrize("v", [1, 4, 8, 32])
    def test_both_schedules_exact(self, v):
        rb, rp = verify_workload(_w3d(), v, pentium_cluster())
        assert rb.passed, rb.describe()
        assert rp.passed, rp.describe()
        assert rb.max_abs_error == 0.0
        assert rp.max_abs_error == 0.0

    def test_non_dividing_height(self):
        rb, rp = verify_workload(_w3d(), 7, pentium_cluster())
        assert rb.passed and rp.passed

    def test_uneven_processor_grid(self):
        w = _w3d(extents=(8, 12, 16), procs=(4, 2, 1))
        rb, rp = verify_workload(w, 4, pentium_cluster())
        assert rb.passed and rp.passed

    def test_single_column_grid(self):
        w = _w3d(extents=(4, 8, 16), procs=(1, 4, 1))
        rb, rp = verify_workload(w, 4, pentium_cluster())
        assert rb.passed and rp.passed


class TestVerify2DDiagonal:
    """The 2-D kernel has dependence (1,1), which crosses the processor
    boundary *and* steps the mapped dimension — the corner-routing case
    handled by the persistent full-column halo."""

    @pytest.mark.parametrize("v", [1, 3, 8, 16])
    def test_blocking_exact(self, v):
        r = verify_against_reference(
            _w2d(), v, pentium_cluster(), blocking=True
        )
        assert r.passed, r.describe()

    @pytest.mark.parametrize("v", [1, 3, 8, 16])
    def test_pipelined_exact(self, v):
        r = verify_against_reference(
            _w2d(), v, pentium_cluster(), blocking=False
        )
        assert r.passed, r.describe()

    def test_more_processors(self):
        w = _w2d(extents=(16, 16), procs=(1, 4))
        rb, rp = verify_workload(w, 4, pentium_cluster())
        assert rb.passed and rp.passed


class TestReportShape:
    def test_describe(self):
        r = verify_against_reference(_w3d((4, 4, 8), (2, 2, 1)), 4,
                                     pentium_cluster(), blocking=True)
        text = r.describe()
        assert "PASS" in text and "w3d" in text
        assert r.total_points == 4 * 4 * 8
