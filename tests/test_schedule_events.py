"""Tests for per-step event expansion (the pipelined data flow)."""

from repro.ir.dependence import DependenceSet
from repro.ir.loopnest import IterationSpace
from repro.schedule.events import cross_processor_deps, expand_events
from repro.schedule.mapping import ProcessorMapping
from repro.schedule.nonoverlap import NonoverlapSchedule
from repro.schedule.overlap import OverlapSchedule
from repro.tiling.tiledspace import tile_space
from repro.tiling.transform import rectangular_tiling

UNIT3 = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])


def _schedules(extents=(8, 8, 32), sides=(4, 4, 4)):
    ts = tile_space(IterationSpace.from_extents(list(extents)),
                    rectangular_tiling(list(sides)))
    return (
        NonoverlapSchedule(ts, UNIT3),
        OverlapSchedule(ts, UNIT3),
    )


class TestCrossProcessorDeps:
    def test_mapped_dim_excluded(self):
        non, _ = _schedules()
        assert set(cross_processor_deps(non)) == {(1, 0, 0), (0, 1, 0)}

    def test_diagonal_dep_crossing(self):
        ts = tile_space(IterationSpace.from_extents([8, 8]),
                        rectangular_tiling([4, 4]))
        s = OverlapSchedule(ts, DependenceSet([(1, 0), (0, 1), (1, 1)]),
                            ProcessorMapping(ts, mapped_dim=0))
        assert set(cross_processor_deps(s)) == {(0, 1), (1, 1)}


class TestNonoverlapEvents:
    def test_triplet_in_same_step(self):
        non, _ = _schedules()
        events = expand_events(non)
        for (rank, step), ev in events.items():
            # Everything a processor does in a step concerns the tile it
            # computes that step.
            if ev.compute is not None:
                for _, produced, _ in ev.sends:
                    assert produced == ev.compute
                for _, _, consumer in ev.recvs:
                    assert consumer == ev.compute

    def test_send_recv_pairing(self):
        non, _ = _schedules()
        events = expand_events(non)
        sends = [(ev.rank, s) for ev in events.values() for s in ev.sends]
        recvs = [(ev.rank, r) for ev in events.values() for r in ev.recvs]
        assert len(sends) == len(recvs)
        # Every send (src, (dst, produced, consumer)) has the mirrored recv.
        recv_set = {(dst_rank := r[0], rank, r[1], r[2]) for rank, r in recvs}
        for rank, (dst, produced, consumer) in sends:
            assert (rank, dst, produced, consumer) in recv_set


class TestOverlapEvents:
    def test_compute_send_offset_by_one(self):
        _, ovl = _schedules()
        events = expand_events(ovl)
        step_of = ovl.step_of
        for ev in events.values():
            for _, produced, _ in ev.sends:
                assert ev.step == step_of(produced) + 1

    def test_recv_one_step_before_consumption(self):
        _, ovl = _schedules()
        events = expand_events(ovl)
        for ev in events.values():
            for _, _, consumer in ev.recvs:
                assert ev.step == ovl.step_of(consumer) - 1

    def test_send_and_recv_of_one_message_share_a_step(self):
        """The paper's in-step pipelining: producer sends during the same
        time step in which the consumer's processor receives."""
        _, ovl = _schedules()
        events = expand_events(ovl)
        sends = {
            (ev.rank, dst, produced, consumer): ev.step
            for ev in events.values()
            for dst, produced, consumer in ev.sends
        }
        recvs = {
            (src, ev.rank, produced, consumer): ev.step
            for ev in events.values()
            for src, produced, consumer in ev.recvs
        }
        assert sends.keys() == recvs.keys()
        for key, step in sends.items():
            assert recvs[key] == step

    def test_steady_state_processor_does_all_three(self):
        """In the pipeline's steady state a processor computes, sends and
        receives within one step (Fig. 2's P3 at step k)."""
        _, ovl = _schedules()
        events = expand_events(ovl)
        full = [
            ev for ev in events.values()
            if ev.compute is not None and ev.sends and ev.recvs
        ]
        assert full, "no steady-state step found"

    def test_example2_dataflow_chain(self):
        """Example 2: data computed at k−1 is sent during k, received at k,
        and consumed at k+1 by the neighbour."""
        _, ovl = _schedules()
        events = expand_events(ovl)
        for ev in events.values():
            for dst, produced, consumer in ev.sends:
                assert ovl.step_of(produced) == ev.step - 1
                assert ovl.step_of(consumer) == ev.step + 1
                assert ovl.mapping.rank_of_tile(consumer) == dst
