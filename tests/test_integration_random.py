"""Randomised end-to-end properties across the whole stack.

Hypothesis generates workload geometries, tile heights and kernels; every
combination must (a) verify numerically against the sequential golden
model under both schedules, and (b) execute tiles on each rank in
exactly the order the schedule theory prescribes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.loopnest import IterationSpace
from repro.kernels.library import binomial_2d, gauss_seidel_2d, lcs_kernel_2d
from repro.kernels.stencil import sequential_reference, sqrt_kernel_3d, sum_kernel_2d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled
from repro.runtime.program import TiledProgram

_KERNELS_2D = [sum_kernel_2d, gauss_seidel_2d, binomial_2d, lcs_kernel_2d]


@st.composite
def _workload_2d(draw):
    kernel = draw(st.sampled_from(_KERNELS_2D))()
    procs = draw(st.integers(2, 4))
    cross = procs * draw(st.integers(2, 4))
    depth = draw(st.integers(6, 40))
    v = draw(st.integers(1, depth))
    w = StencilWorkload(
        "rand2d", IterationSpace.from_extents([depth, cross]),
        kernel, (1, procs), 0,
    )
    return w, v


@st.composite
def _workload_3d(draw):
    p1, p2 = draw(st.integers(1, 2)), draw(st.integers(1, 3))
    c1 = p1 * draw(st.integers(2, 3))
    c2 = p2 * draw(st.integers(2, 3))
    depth = draw(st.integers(4, 24))
    v = draw(st.integers(1, depth))
    w = StencilWorkload(
        "rand3d", IterationSpace.from_extents([c1, c2, depth]),
        sqrt_kernel_3d(), (p1, p2, 1), 2,
    )
    return w, v


class TestRandomizedVerification:
    @given(_workload_2d())
    @settings(max_examples=25, deadline=None)
    def test_2d_both_schedules_bit_exact(self, wv):
        w, v = wv
        ref = sequential_reference(w.kernel, w.space)
        for blocking in (True, False):
            run = run_tiled(w, v, pentium_cluster(), blocking=blocking,
                            numeric=True)
            assert np.array_equal(run.result, ref), (
                f"{w.kernel.name} V={v} blocking={blocking}"
            )

    @given(_workload_3d())
    @settings(max_examples=15, deadline=None)
    def test_3d_both_schedules_bit_exact(self, wv):
        w, v = wv
        ref = sequential_reference(w.kernel, w.space)
        for blocking in (True, False):
            run = run_tiled(w, v, pentium_cluster(), blocking=blocking,
                            numeric=True)
            assert np.array_equal(run.result, ref)

    @given(_workload_3d())
    @settings(max_examples=10, deadline=None)
    def test_schedules_agree_with_each_other(self, wv):
        w, v = wv
        non = run_tiled(w, v, pentium_cluster(), blocking=True, numeric=True)
        ovl = run_tiled(w, v, pentium_cluster(), blocking=False, numeric=True)
        assert np.array_equal(non.result, ovl.result)


class TestSimulatedOrderMatchesScheduleTheory:
    def _trace_compute_order(self, w, v, blocking):
        run = run_tiled(w, v, pentium_cluster(), blocking=blocking, trace=True)
        prog = TiledProgram(w, v, pentium_cluster(), blocking=blocking)
        orders = {}
        for rank in range(prog.num_ranks):
            computes = [
                r for r in run.trace.for_rank(rank) if r.kind == "compute"
            ]
            orders[rank] = [r.label for r in computes]
        return orders, prog

    @pytest.mark.parametrize("blocking", [True, False])
    def test_each_rank_executes_its_column_in_order(self, blocking):
        w = StencilWorkload(
            "order", IterationSpace.from_extents([8, 8, 32]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        orders, prog = self._trace_compute_order(w, 8, blocking)
        expected = [f"tile{m}" for m in range(prog.tiles_per_rank)]
        for rank, labels in orders.items():
            assert labels == expected

    def test_wavefront_start_times_respect_hyperplane(self):
        """Rank (i,j) starts its first tile no earlier than its schedule
        offset demands relative to rank (0,0)."""
        w = StencilWorkload(
            "wave", IterationSpace.from_extents([8, 8, 256]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        run = run_tiled(w, 64, pentium_cluster(), blocking=False, trace=True)
        prog = TiledProgram(w, 64, pentium_cluster(), blocking=False)
        first = {
            rank: min(
                r.start for r in run.trace.for_rank(rank) if r.kind == "compute"
            )
            for rank in range(prog.num_ranks)
        }
        for rank in range(prog.num_ranks):
            coords = prog.mapping.coords_of_rank(rank)
            offset = sum(coords)  # schedule distance from the corner
            if offset > 0:
                assert first[rank] > first[0]
