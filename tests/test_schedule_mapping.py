"""Tests for processor mapping of tiles."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.schedule.mapping import ProcessorMapping, choose_mapping_dimension
from repro.tiling.tiledspace import tile_space
from repro.tiling.transform import rectangular_tiling


def _tiled(extents, sides):
    return tile_space(IterationSpace.from_extents(extents), rectangular_tiling(sides))


class TestChooseMappingDimension:
    def test_largest_wins(self):
        assert choose_mapping_dimension((4, 4, 64)) == 2

    def test_tie_breaks_to_lowest_index(self):
        assert choose_mapping_dimension((8, 8)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_mapping_dimension(())
        with pytest.raises(ValueError):
            choose_mapping_dimension((4, 0))


class TestProcessorMapping:
    def test_default_mapped_dim_is_largest(self):
        ts = _tiled([16, 16, 1024], [4, 4, 64])  # tiled extents (4, 4, 16)
        m = ProcessorMapping(ts)
        assert m.mapped_dim == 2

    def test_grid_shape_and_count(self):
        ts = _tiled([16, 16, 1024], [4, 4, 64])
        m = ProcessorMapping(ts, mapped_dim=2)
        assert m.grid_shape == (4, 4)
        assert m.num_processors == 16
        assert m.tiles_per_processor == 16

    def test_rank_coords_roundtrip(self):
        ts = _tiled([16, 16, 1024], [4, 4, 64])
        m = ProcessorMapping(ts, mapped_dim=2)
        for rank in range(m.num_processors):
            assert m.rank_of_coords(m.coords_of_rank(rank)) == rank

    def test_tiles_of_rank_are_a_column(self):
        ts = _tiled([8, 8, 64], [4, 4, 8])
        m = ProcessorMapping(ts, mapped_dim=2)
        tiles = m.tiles_of_rank(0)
        assert len(tiles) == m.tiles_per_processor
        assert all(t[:2] == (0, 0) for t in tiles)
        assert [t[2] for t in tiles] == list(range(8))

    def test_every_tile_owned_exactly_once(self):
        ts = _tiled([8, 8, 16], [4, 4, 4])
        m = ProcessorMapping(ts, mapped_dim=2)
        owned = [t for r in range(m.num_processors) for t in m.tiles_of_rank(r)]
        assert len(owned) == ts.tile_count
        assert len(set(owned)) == ts.tile_count

    def test_same_processor(self):
        ts = _tiled([8, 8, 16], [4, 4, 4])
        m = ProcessorMapping(ts, mapped_dim=2)
        assert m.same_processor((0, 0, 0), (0, 0, 3))
        assert not m.same_processor((0, 0, 0), (1, 0, 0))

    def test_rank_of_tile_consistent_with_coords(self):
        ts = _tiled([8, 8, 16], [4, 4, 4])
        m = ProcessorMapping(ts, mapped_dim=2)
        for t in ts.tiles():
            assert m.rank_of_tile(t) == m.rank_of_coords(m.processor_coords(t))

    def test_negative_lower_normalised(self):
        space = IterationSpace([-4, 0], [3, 7])
        ts = tile_space(space, rectangular_tiling([4, 4]))
        m = ProcessorMapping(ts, mapped_dim=1)
        assert m.processor_coords((-1, 0)) == (0,)
        assert m.processor_coords((0, 0)) == (1,)

    def test_validation(self):
        ts = _tiled([8, 8], [4, 4])
        with pytest.raises(ValueError):
            ProcessorMapping(ts, mapped_dim=2)
        m = ProcessorMapping(ts, mapped_dim=0)
        with pytest.raises(ValueError):
            m.processor_coords((9, 9))
        with pytest.raises(ValueError):
            m.rank_of_coords((5,))
        with pytest.raises(ValueError):
            m.coords_of_rank(99)
        with pytest.raises(ValueError):
            m.rank_of_coords((0, 0))
