"""Tests for FIFO hardware resources."""

import pytest

from repro.sim.core import Simulator
from repro.sim.resources import FifoResource


def _completions(sim, events):
    done = []
    for ev in events:
        ev.add_callback(done.append)
    sim.run()
    return done


class TestFifoResource:
    def test_serialises_jobs(self):
        sim = Simulator()
        r = FifoResource(sim, "dma")
        e1 = r.submit(2.0)
        e2 = r.submit(3.0)
        intervals = _completions(sim, [e1, e2])
        assert intervals == [(0.0, 2.0), (2.0, 5.0)]

    def test_not_before(self):
        sim = Simulator()
        r = FifoResource(sim, "nic")
        e1 = r.submit(1.0, not_before=5.0)
        intervals = _completions(sim, [e1])
        assert intervals == [(5.0, 6.0)]

    def test_not_before_after_queue(self):
        sim = Simulator()
        r = FifoResource(sim, "nic")
        e1 = r.submit(4.0)
        e2 = r.submit(1.0, not_before=2.0)  # must still wait for e1
        intervals = _completions(sim, [e1, e2])
        assert intervals == [(0.0, 4.0), (4.0, 5.0)]

    def test_submission_respects_current_time(self):
        sim = Simulator()
        r = FifoResource(sim, "x")
        captured = []
        sim.schedule(10.0, lambda: captured.append(r.submit(1.0)))
        sim.run()
        done = []
        captured[0].add_callback(done.append)
        sim.run()
        assert done == [(10.0, 11.0)]

    def test_zero_duration_job(self):
        sim = Simulator()
        r = FifoResource(sim, "x")
        e = r.submit(0.0)
        assert _completions(sim, [e]) == [(0.0, 0.0)]

    def test_negative_duration_rejected(self):
        sim = Simulator()
        r = FifoResource(sim, "x")
        with pytest.raises(ValueError):
            r.submit(-1.0)

    def test_busy_time_and_utilization(self):
        sim = Simulator()
        r = FifoResource(sim, "x")
        r.submit(2.0)
        r.submit(3.0)
        sim.run()
        assert r.busy_time == 5.0
        assert r.jobs_served == 2
        assert r.utilization(10.0) == 0.5
        assert r.utilization(2.0) == 1.0  # clipped
        with pytest.raises(ValueError):
            r.utilization(0.0)

    def test_free_at(self):
        sim = Simulator()
        r = FifoResource(sim, "x")
        assert r.free_at == 0.0
        r.submit(7.0)
        assert r.free_at == 7.0
