"""Campaign framework: configs, runs, persistence, machine comparison."""

import pytest

from repro.experiments.campaign import (
    KERNELS,
    MACHINES,
    CampaignRecord,
    ExperimentConfig,
    compare_machines,
    load_records,
    run_campaign,
    save_records,
)


def _cfg(**overrides) -> ExperimentConfig:
    base = dict(
        name="camp",
        extents=(8, 8, 512),
        procs_per_dim=(2, 2, 1),
        mapped_dim=2,
        kernel="sqrt3d",
        machine="pentium",
        heights=(32, 64, 128),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestConfig:
    def test_registries_cover_all_library_kernels(self):
        assert {"sum2d", "sqrt3d", "lcs_2d", "binomial_2d",
                "gauss_seidel_2d", "anisotropic_3d", "sum_4d"} <= set(KERNELS)
        assert {"pentium", "sci", "example1", "ideal"} <= set(MACHINES)

    def test_workload_construction(self):
        w = _cfg().workload()
        assert w.space.extents == (8, 8, 512)
        assert w.kernel.name == "sqrt3d"

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            _cfg(kernel="nope")

    def test_unknown_machine(self):
        with pytest.raises(ValueError, match="unknown machine"):
            _cfg(machine="nope")

    def test_empty_heights(self):
        with pytest.raises(ValueError):
            _cfg(heights=())


class TestRunAndPersist:
    @pytest.fixture(scope="class")
    def records(self):
        return run_campaign([_cfg(), _cfg(name="camp2", kernel="anisotropic_3d")])

    def test_records_structure(self, records):
        assert len(records) == 2
        r = records[0]
        assert isinstance(r, CampaignRecord)
        assert len(r.points) == 3
        assert r.v_opt_overlap in (32, 64, 128)
        assert 0 < r.improvement < 1

    def test_kernel_affects_results(self, records):
        # The anisotropic kernel has an extra dependence and thus a
        # different time profile (at minimum, identical is suspicious).
        assert records[0].t_opt_overlap != records[1].t_opt_overlap

    def test_json_roundtrip(self, records, tmp_path):
        path = str(tmp_path / "records.json")
        save_records(records, path)
        loaded = load_records(path)
        assert len(loaded) == len(records)
        assert loaded[0].config == records[0].config
        assert loaded[0].improvement == pytest.approx(records[0].improvement)
        assert loaded[0].points[0]["v"] == records[0].points[0]["v"]


class TestCompareMachines:
    def test_sci_projection(self):
        records, table = compare_machines(_cfg(), ["pentium", "sci"])
        assert len(records) == 2
        by_machine = {r.config.machine: r for r in records}
        # SCI's faster fabric beats FastEthernet at the optimum.
        assert by_machine["sci"].t_opt_overlap < (
            by_machine["pentium"].t_opt_overlap
        )
        assert "machine comparison" in table
        assert "sci" in table and "pentium" in table


class TestDiffRecords:
    def _record(self, name, t_ovl, t_non):
        from repro.experiments.campaign import CampaignRecord

        return CampaignRecord(
            config=_cfg(name=name),
            points=(),
            v_opt_overlap=64,
            t_opt_overlap=t_ovl,
            v_opt_nonoverlap=64,
            t_opt_nonoverlap=t_non,
            improvement=1 - t_ovl / t_non,
        )

    def test_no_change_no_regression(self):
        from repro.experiments.campaign import diff_records

        base = [self._record("a", 0.10, 0.15)]
        deltas = diff_records(base, base)
        assert len(deltas) == 1
        assert not deltas[0].regressed
        assert deltas[0].overlap_delta == pytest.approx(0.0)

    def test_slowdown_flagged(self):
        from repro.experiments.campaign import diff_records

        base = [self._record("a", 0.10, 0.15)]
        cur = [self._record("a", 0.12, 0.15)]
        deltas = diff_records(base, cur, tolerance=0.05)
        assert deltas[0].regressed
        assert deltas[0].overlap_delta == pytest.approx(0.2)

    def test_speedup_not_flagged(self):
        from repro.experiments.campaign import diff_records

        base = [self._record("a", 0.10, 0.15)]
        cur = [self._record("a", 0.08, 0.14)]
        assert not diff_records(base, cur)[0].regressed

    def test_mismatched_campaigns(self):
        from repro.experiments.campaign import diff_records

        with pytest.raises(ValueError, match="differing configs"):
            diff_records([self._record("a", 1, 2)], [self._record("b", 1, 2)])

    def test_render(self):
        from repro.experiments.campaign import diff_records, render_deltas

        base = [self._record("a", 0.10, 0.15)]
        out = render_deltas(diff_records(base, base))
        assert "campaign comparison" in out
        assert "a" in out
