"""Distribution planning: grid factoring, V choice, prediction quality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d, sum_kernel_2d
from repro.model.machine import pentium_cluster
from repro.runtime.executor import run_tiled
from repro.runtime.planner import factor_grid, plan_distribution


class TestFactorGrid:
    def test_paper_grid(self):
        assert factor_grid(16, [16, 16]) == (4, 4)

    def test_prefers_more_processors(self):
        assert factor_grid(12, [16, 16]) == (2, 4)  # 8 > any squarer option

    def test_divisibility_respected(self):
        grid = factor_grid(6, [9, 4])
        assert grid == (3, 2)

    def test_single_dimension(self):
        assert factor_grid(8, [32]) == (8,)
        assert factor_grid(5, [32]) == (4,)

    def test_budget_one(self):
        assert factor_grid(1, [16, 16]) == (1, 1)

    def test_prime_extents(self):
        assert factor_grid(16, [7, 13]) == (7, 1) or factor_grid(16, [7, 13]) == (1, 13)

    def test_validation(self):
        with pytest.raises(ValueError):
            factor_grid(0, [4])

    @given(
        st.integers(1, 20),
        st.lists(st.integers(2, 24), min_size=1, max_size=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_feasible_and_within_budget(self, budget, extents):
        grid = factor_grid(budget, extents)
        assert grid is not None
        product = 1
        for g, e in zip(grid, extents):
            assert e % g == 0
            product *= g
        assert product <= budget


class TestPlanDistribution:
    def test_recovers_paper_setup(self):
        """16 processors on 16×16×16384 → the paper's 4×4 grid mapped
        along k, with V in the U-curve's plateau."""
        plan = plan_distribution(
            IterationSpace.from_extents([16, 16, 16384]),
            sqrt_kernel_3d(), pentium_cluster(), 16,
        )
        assert plan.workload.procs_per_dim == (4, 4, 1)
        assert plan.workload.mapped_dim == 2
        assert 64 <= plan.v <= 512
        assert 0.25 < plan.predicted_improvement < 0.45

    def test_prediction_matches_simulation(self):
        plan = plan_distribution(
            IterationSpace.from_extents([16, 16, 2048]),
            sqrt_kernel_3d(), pentium_cluster(), 16,
        )
        run = run_tiled(plan.workload, plan.v, pentium_cluster(),
                        blocking=False)
        assert run.completion_time == pytest.approx(
            plan.predicted_time, rel=0.1
        )

    def test_nonoverlap_plan(self):
        plan = plan_distribution(
            IterationSpace.from_extents([16, 16, 1024]),
            sqrt_kernel_3d(), pentium_cluster(), 16, overlap=False,
        )
        assert not plan.overlap
        # The other schedule (overlap) is predicted to win.
        assert plan.predicted_improvement < 0

    def test_explicit_heights(self):
        plan = plan_distribution(
            IterationSpace.from_extents([16, 16, 1024]),
            sqrt_kernel_3d(), pentium_cluster(), 16, heights=[64, 128],
        )
        assert plan.v in (64, 128)
        with pytest.raises(ValueError, match="heights"):
            plan_distribution(
                IterationSpace.from_extents([16, 16, 1024]),
                sqrt_kernel_3d(), pentium_cluster(), 16, heights=[4096],
            )

    def test_2d_plan(self):
        plan = plan_distribution(
            IterationSpace.from_extents([2000, 100]),
            sum_kernel_2d(), pentium_cluster(), 10,
        )
        assert plan.workload.mapped_dim == 0
        assert plan.workload.procs_per_dim == (1, 10)

    def test_describe(self):
        plan = plan_distribution(
            IterationSpace.from_extents([16, 16, 512]),
            sqrt_kernel_3d(), pentium_cluster(), 4,
        )
        text = plan.describe()
        assert "V=" in text and "KiB/rank" in text

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            plan_distribution(
                IterationSpace.from_extents([8, 8]),
                sqrt_kernel_3d(), pentium_cluster(), 4,
            )

    def test_plan_runs_numerically_correct(self):
        from repro.runtime.verify import verify_against_reference

        plan = plan_distribution(
            IterationSpace.from_extents([8, 8, 64]),
            sqrt_kernel_3d(), pentium_cluster(), 4,
        )
        report = verify_against_reference(
            plan.workload, plan.v, pentium_cluster(), blocking=False
        )
        assert report.passed
