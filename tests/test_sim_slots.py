"""Lint-style guard: hot-path simulator classes must stay ``__dict__``-free.

Every class below is instantiated (or touched) once per simulated event
or per simulated message.  A single forgotten ``__slots__`` — or a new
attribute assigned outside the declared slots, or a base class without
``__slots__ = ()`` — silently re-grows a per-instance ``__dict__`` and
with it most of the allocation cost the zero-allocation hot path
removed.  ``cls.__dictoffset__ == 0`` is the authoritative check: it is
nonzero iff instances carry a ``__dict__``, however it was acquired
(own class, or inherited from any base).
"""

from __future__ import annotations

import inspect

import pytest

import repro.sim.collectives as collectives_mod
import repro.sim.core as core_mod
import repro.sim.equeue as equeue_mod
import repro.sim.mpi as mpi_mod
from repro.sim.core import (
    AllOf,
    Effect,
    Event,
    Process,
    Simulator,
    Timeout,
    WaitEvent,
)
from repro.sim.equeue import CalendarQueue, EventQueue, HeapQueue
from repro.sim.faults import (
    Degradation,
    FaultPlan,
    LinkFaults,
    MessageFate,
    NodePause,
    Straggler,
)
from repro.sim.mpi import RecvRequest, Rank, SendRequest
from repro.sim.network import Network
from repro.sim.reliable import (
    ReliableConfig,
    ReliableStats,
    ReliableTransport,
    _Transfer,
)
from repro.sim.resources import FifoResource
from repro.sim.tracing import Trace, TraceRecord

#: Classes on the per-event / per-message hot path.  Private classes are
#: reached through their modules so renames fail loudly here instead of
#: silently dropping coverage.
HOT_PATH_CLASSES = [
    # core event loop
    Effect,
    Event,
    Timeout,
    WaitEvent,
    AllOf,
    Process,
    Simulator,
    # event queues
    EventQueue,
    HeapQueue,
    CalendarQueue,
    # resources / network / tracing singletons touched per event
    FifoResource,
    Network,
    Trace,
    TraceRecord,
    # message layer
    mpi_mod._Message,
    mpi_mod._WaitFrame,
    SendRequest,
    RecvRequest,
    Rank,
    mpi_mod._ComputeEffect,
    mpi_mod._IsendEffect,
    mpi_mod._SendEffect,
    mpi_mod._IrecvEffect,
    mpi_mod._RecvEffect,
    mpi_mod._WaitEffect,
    mpi_mod._BarrierEffect,
    collectives_mod.CollectiveEffect,
    # reliability layer (per message under ARQ)
    ReliableConfig,
    ReliableStats,
    ReliableTransport,
    _Transfer,
    # fault plan records (consulted per message)
    LinkFaults,
    Degradation,
    Straggler,
    NodePause,
    MessageFate,
    FaultPlan,
]


@pytest.mark.parametrize(
    "cls", HOT_PATH_CLASSES, ids=lambda c: f"{c.__module__}.{c.__qualname__}"
)
def test_hot_path_class_has_no_dict(cls):
    assert cls.__dictoffset__ == 0, (
        f"{cls.__module__}.{cls.__qualname__} instances carry a __dict__ — "
        f"a hot-path class (or one of its bases) lost its __slots__"
    )


def test_every_effect_subclass_is_slotted():
    """Sweep: any Effect subclass defined in the sim package must be
    ``__dict__``-free — new effects are hot by construction (one instance
    per program step) and must not silently regress."""
    seen = set()
    for mod in (core_mod, equeue_mod, mpi_mod, collectives_mod):
        for _, cls in inspect.getmembers(mod, inspect.isclass):
            if (
                issubclass(cls, Effect)
                and cls.__module__.startswith("repro.sim.")
            ):
                seen.add(cls)
    assert len(seen) >= 8, "Effect sweep lost its subjects — check imports"
    offenders = sorted(
        f"{c.__module__}.{c.__qualname__}"
        for c in seen
        if c.__dictoffset__ != 0
    )
    assert not offenders, f"Effect subclasses with a __dict__: {offenders}"


def test_slots_actually_reject_stray_attributes():
    """The guard above is only meaningful if attribute injection really
    fails — prove it on a pooled message record."""
    sim = Simulator()
    res = FifoResource(sim, "x")
    with pytest.raises(AttributeError):
        res.scratch = 1  # type: ignore[attr-defined]
    ev = Event(sim)
    with pytest.raises(AttributeError):
        ev.scratch = 1  # type: ignore[attr-defined]
