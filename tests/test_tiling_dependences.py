"""Tests for the supernode dependence matrix D^S (paper §2.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.util.intmat import FractionMatrix
from repro.tiling.dependences import (
    first_tile_points,
    supernode_dependence_set,
    supernode_dependences,
)
from repro.tiling.transform import TilingTransformation, rectangular_tiling


class TestFirstTilePoints:
    def test_rectangular(self):
        pts = list(first_tile_points(rectangular_tiling([2, 3])))
        assert len(pts) == 6
        assert (0, 0) in pts and (1, 2) in pts

    def test_skewed_count_equals_volume(self):
        t = TilingTransformation(P=FractionMatrix([[2, 1], [0, 2]]))
        pts = list(first_tile_points(t))
        assert len(pts) == int(t.tile_volume()) == 4
        for p in pts:
            assert all(0 <= x < 1 for x in t.H.matvec(p))


class TestSupernodeDependences:
    def test_contained_dependences_give_unit_vectors(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])
        t = rectangular_tiling([10, 10])
        ds = set(supernode_dependences(t, d))
        # Every unit combination reachable, including intra-tile zero.
        assert ds == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_supernode_set_drops_zero(self):
        d = DependenceSet([(1, 0), (0, 1)])
        t = rectangular_tiling([4, 4])
        s = supernode_dependence_set(t, d)
        assert set(s.vectors) == {(0, 0 + 1), (1, 0)}
        assert s.is_unitary()

    def test_large_dependence_not_unitary(self):
        d = DependenceSet([(5,)])
        t = rectangular_tiling([4])
        ds = supernode_dependences(t, d)
        assert set(ds) == {(1,), (2,)}

    def test_exactly_tile_sized_dependence(self):
        d = DependenceSet([(4,)])
        t = rectangular_tiling([4])
        assert set(supernode_dependences(t, d)) == {(1,)}

    def test_all_intra_tile_raises(self):
        # A dependence of (1,) within tiles of size 100 still crosses a
        # boundary for the last in-tile point, so build a genuinely
        # intra-tile-only case via a legal-but-contained check instead:
        # there is none for nonzero uniform deps on an infinite lattice,
        # so the error path needs a dependence filtered to zero — not
        # constructible; assert supernode_dependence_set never returns
        # an empty set for unit deps.
        d = DependenceSet([(1, 0)])
        t = rectangular_tiling([3, 3])
        s = supernode_dependence_set(t, d)
        assert len(s) >= 1

    def test_illegal_tiling_raises(self):
        d = DependenceSet([(1, -1)])
        t = rectangular_tiling([4, 4])
        with pytest.raises(ValueError):
            supernode_dependences(t, d)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            supernode_dependences(rectangular_tiling([4]), DependenceSet([(1, 0)]))

    def test_skewed_tiling_matches_rectangular_on_diagonal_free_deps(self):
        d = DependenceSet([(1, 0), (0, 1)])
        t = TilingTransformation(P=FractionMatrix([[2, 0], [0, 2]]))
        assert set(supernode_dependences(t, d)) == {(0, 0), (1, 0), (0, 1)}


def _brute_force(tiling, deps):
    out = set()
    for d in deps.vectors:
        for j0 in first_tile_points(tiling):
            shifted = tuple(a + b for a, b in zip(j0, d))
            out.add(tiling.tile_of(shifted))
    return out


_side = st.integers(min_value=1, max_value=6)
_dep = st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(any)


class TestAgainstBruteForce:
    @given(st.tuples(_side, _side), st.lists(_dep, min_size=1, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_combinatorial_equals_enumeration(self, sides, vecs):
        """The fast per-dimension construction for rectangular tilings must
        agree with literal enumeration of the first tile."""
        t = rectangular_tiling(list(sides))
        d = DependenceSet(vecs)
        assert set(supernode_dependences(t, d)) == _brute_force(t, d)

    @given(st.tuples(_side, _side), st.lists(_dep, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_containment_implies_unitary(self, sides, vecs):
        """Paper §2.3: floor(H D) < 1 ⟹ D^S is 0/1."""
        t = rectangular_tiling(list(sides))
        d = DependenceSet(vecs)
        if t.contains_dependences(d):
            assert all(
                all(x in (0, 1) for x in v)
                for v in supernode_dependences(t, d)
            )
