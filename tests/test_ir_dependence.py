"""Tests for dependence sets and schedule validity predicates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet, lexicographically_positive


class TestLexPositive:
    def test_positive_first(self):
        assert lexicographically_positive((1, -5))

    def test_leading_zero(self):
        assert lexicographically_positive((0, 1))
        assert not lexicographically_positive((0, -1))

    def test_zero_vector(self):
        assert not lexicographically_positive((0, 0))


class TestConstruction:
    def test_basic(self):
        d = DependenceSet([(1, 0), (0, 1)])
        assert d.ndim == 2
        assert d.count == 2
        assert len(d) == 2
        assert (1, 0) in d

    def test_dedup_preserves_order(self):
        d = DependenceSet([(1, 1), (1, 0), (1, 1)])
        assert d.vectors == ((1, 1), (1, 0))

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            DependenceSet([(0, 0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DependenceSet([])

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            DependenceSet([(1, 0), (1,)])

    def test_matrix_columns_are_vectors(self):
        d = DependenceSet([(1, 2), (3, 4)])
        m = d.matrix()
        assert m.col(0) == (1, 2)
        assert m.col(1) == (3, 4)

    def test_as_array(self):
        d = DependenceSet([(1, 2), (3, 4)])
        a = d.as_array()
        assert a.shape == (2, 2)
        assert np.array_equal(a[:, 0], [1, 2])


class TestSchedulePredicates:
    def test_example1_admits_unit_schedule(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])
        assert d.admits_schedule((1, 1))
        assert not d.admits_schedule((1, -1))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            DependenceSet([(1, 0)]).admits_schedule((1,))

    def test_displacement(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])
        assert d.displacement((1, 1)) == 1
        assert d.displacement((2, 3)) == 2

    def test_displacement_requires_validity(self):
        d = DependenceSet([(1, 0), (0, 1)])
        with pytest.raises(ValueError):
            d.displacement((1, 0))

    def test_lexicographic_check(self):
        assert DependenceSet([(1, -1)]).all_lexicographically_positive()
        assert not DependenceSet([(-1, 1)]).all_lexicographically_positive()

    def test_is_unitary(self):
        assert DependenceSet([(1, 0), (1, 1)]).is_unitary()
        assert not DependenceSet([(2, 0)]).is_unitary()
        assert not DependenceSet([(1, -1)]).is_unitary()


_vec = st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)).filter(any)


class TestProperties:
    @given(st.lists(_vec, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_positive_orthant_always_unit_schedulable(self, vecs):
        """Non-negative non-zero dependences always admit Π = (1,…,1)."""
        d = DependenceSet(vecs)
        assert d.admits_schedule((1, 1, 1))
        assert d.displacement((1, 1, 1)) == min(sum(v) for v in d.vectors)

    @given(st.lists(_vec, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_scaling_pi_scales_displacement(self, vecs):
        d = DependenceSet(vecs)
        assert d.displacement((2, 2, 2)) == 2 * d.displacement((1, 1, 1))
