"""Tests for the per-step A/B cost decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.costs import StepCosts, step_costs
from repro.model.machine import Machine, pentium_cluster


def _machine():
    return Machine(
        t_c=1e-6, t_s=100e-6, t_t=1e-7,
        fill_mpi_fraction=0.5,
        fill_mpi_per_byte=0.0,
        fill_kernel_per_byte=0.0,
    )


class TestStepCosts:
    def test_components(self):
        sc = step_costs(_machine(), 1000, [4000, 4000])
        assert sc.a1_fill_mpi_send == pytest.approx(100e-6)  # 2 × 50 µs
        assert sc.a2_compute == pytest.approx(1000e-6)
        assert sc.a3_fill_mpi_recv == pytest.approx(100e-6)
        assert sc.b4_transmit == pytest.approx(800e-6)
        assert sc.b1_receive == pytest.approx(800e-6)
        assert sc.b2_fill_kernel_recv == pytest.approx(100e-6)
        assert sc.b3_fill_kernel_send == pytest.approx(100e-6)

    def test_sides(self):
        sc = step_costs(_machine(), 1000, [4000, 4000])
        assert sc.cpu_side == pytest.approx(1200e-6)
        assert sc.comm_side == pytest.approx(1800e-6)
        assert not sc.cpu_bound
        assert sc.overlapped_step == pytest.approx(sc.comm_side)

    def test_serialized_counts_wire_once(self):
        """Paper Example 1 convention: T_transmit once per message pair."""
        sc = step_costs(_machine(), 1000, [4000, 4000])
        assert sc.serialized_step == pytest.approx(
            sc.cpu_side + sc.b2_fill_kernel_recv + sc.b3_fill_kernel_send
            + sc.b4_transmit
        )

    def test_asymmetric_recv_sizes(self):
        sc = step_costs(_machine(), 10, [1000], [2000, 3000])
        assert sc.b1_receive == pytest.approx(500e-6)
        assert sc.b4_transmit == pytest.approx(100e-6)

    def test_no_messages(self):
        sc = step_costs(_machine(), 500, [])
        assert sc.comm_side == 0.0
        assert sc.cpu_bound
        assert sc.overlapped_step == sc.serialized_step == sc.a2_compute

    def test_validation(self):
        with pytest.raises(ValueError):
            step_costs(_machine(), -1, [])
        with pytest.raises(ValueError):
            step_costs(_machine(), 1, [-5])
        with pytest.raises(ValueError):
            step_costs(_machine(), 1, [1], [-5])


class TestExample1Numbers:
    def test_nonoverlap_step_is_364_tc(self):
        """Example 1: T = T_comp + T_comm = 100 + 200 + 64 t_c per step."""
        from repro.model.machine import example1_machine

        m = example1_machine()
        sc = step_costs(m, 100, [80])  # V_comm = 20 elements × 4 bytes
        assert sc.serialized_step / m.t_c == pytest.approx(364.0)


_bytes = st.floats(min_value=0, max_value=1e6, allow_nan=False)


class TestProperties:
    @given(st.floats(0, 1e6), st.lists(_bytes, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_step_orderings(self, points, sizes):
        """max(A, B) <= A + B always; the serialized step lies between the
        CPU side and A + B; in the CPU-bound regime (the paper's case 1)
        the overlapped step never exceeds the serialized one."""
        sc = step_costs(pentium_cluster(), points, sizes)
        assert sc.overlapped_step <= sc.cpu_side + sc.comm_side + 1e-15
        assert sc.cpu_side <= sc.serialized_step + 1e-15
        assert sc.serialized_step <= sc.cpu_side + sc.comm_side + 1e-15
        if sc.cpu_bound:
            assert sc.overlapped_step <= sc.serialized_step + 1e-15

    @given(st.floats(0, 1e6), st.lists(_bytes, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_compute(self, points, sizes):
        m = pentium_cluster()
        sc1 = step_costs(m, points, sizes)
        sc2 = step_costs(m, points + 100, sizes)
        assert sc2.cpu_side >= sc1.cpu_side
        assert sc2.overlapped_step >= sc1.overlapped_step
