"""Tests for trace collection and utilisation accounting."""

import pytest

from repro.sim.tracing import CPU_BUSY_KINDS, Trace, TraceRecord


class TestTrace:
    def test_add_and_query(self):
        t = Trace()
        t.add(0, "compute", 0.0, 2.0, "tile0")
        t.add(1, "compute", 0.0, 1.0)
        t.add(0, "blocked_recv", 2.0, 3.0)
        assert len(t.for_rank(0)) == 2
        assert t.ranks() == [0, 1]
        assert t.end_time() == 3.0

    def test_record_duration(self):
        r = TraceRecord(0, "compute", 1.0, 3.5)
        assert r.duration == 2.5

    def test_invalid_interval(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.add(0, "compute", 2.0, 1.0)

    def test_disabled_trace_drops_records(self):
        t = Trace(enabled=False)
        t.add(0, "compute", 0.0, 1.0)
        assert t.records == []
        assert t.end_time() == 0.0

    def test_busy_time_kinds(self):
        t = Trace()
        t.add(0, "compute", 0.0, 2.0)
        t.add(0, "fill_mpi_send", 2.0, 3.0)
        t.add(0, "blocked_recv", 3.0, 10.0)
        assert t.busy_time(0) == 3.0
        assert t.busy_time(0, kinds=["compute"]) == 2.0
        assert "blocked_recv" not in CPU_BUSY_KINDS

    def test_utilization(self):
        t = Trace()
        t.add(0, "compute", 0.0, 5.0)
        assert t.utilization(0, 10.0) == 0.5
        assert t.utilization(0, 4.0) == 1.0  # clipped
        with pytest.raises(ValueError):
            t.utilization(0, 0.0)

    def test_mean_utilization(self):
        t = Trace()
        t.add(0, "compute", 0.0, 10.0)
        t.add(1, "compute", 0.0, 5.0)
        assert t.mean_utilization(10.0) == pytest.approx(0.75)

    def test_mean_utilization_empty(self):
        assert Trace().mean_utilization(1.0) == 0.0
