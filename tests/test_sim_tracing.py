"""Tests for trace collection, term attribution and utilisation accounting."""

import pytest

from repro.sim.tracing import (
    A_TERMS,
    B_TERMS,
    CPU_BUSY_KINDS,
    KIND_TERMS,
    RESOURCES,
    Trace,
    TraceRecord,
    merged_length,
)


class TestTrace:
    def test_add_and_query(self):
        t = Trace()
        t.add(0, "compute", 0.0, 2.0, "tile0")
        t.add(1, "compute", 0.0, 1.0)
        t.add(0, "blocked_recv", 2.0, 3.0)
        assert len(t.for_rank(0)) == 2
        assert t.ranks() == [0, 1]
        assert t.end_time() == 3.0

    def test_record_duration(self):
        r = TraceRecord(0, "compute", 1.0, 3.5)
        assert r.duration == 2.5

    def test_invalid_interval(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.add(0, "compute", 2.0, 1.0)

    def test_disabled_trace_drops_records(self):
        t = Trace(enabled=False)
        t.add(0, "compute", 0.0, 1.0)
        assert t.records == []
        assert t.end_time() == 0.0

    def test_busy_time_kinds(self):
        t = Trace()
        t.add(0, "compute", 0.0, 2.0)
        t.add(0, "fill_mpi_send", 2.0, 3.0)
        t.add(0, "blocked_recv", 3.0, 10.0)
        assert t.busy_time(0) == 3.0
        assert t.busy_time(0, kinds=["compute"]) == 2.0
        assert "blocked_recv" not in CPU_BUSY_KINDS

    def test_utilization(self):
        t = Trace()
        t.add(0, "compute", 0.0, 5.0)
        assert t.utilization(0, 10.0) == 0.5
        with pytest.raises(ValueError):
            t.utilization(0, 0.0)

    def test_utilization_rejects_overrun(self):
        # Regression: busy time past the horizon used to be clamped to
        # 100 %, hiding accounting errors; it must raise now.
        t = Trace()
        t.add(0, "compute", 0.0, 5.0)
        with pytest.raises(ValueError, match="exceeds horizon"):
            t.utilization(0, 4.0)

    def test_mean_utilization(self):
        t = Trace()
        t.add(0, "compute", 0.0, 10.0)
        t.add(1, "compute", 0.0, 5.0)
        assert t.mean_utilization(10.0) == pytest.approx(0.75)

    def test_mean_utilization_empty(self):
        assert Trace().mean_utilization(1.0) == 0.0


class TestBusyTimeMerging:
    def test_overlapping_records_counted_once(self):
        # Regression: two overlapping compute records used to sum to 3.0
        # (raw durations) even though they only cover [0, 2.5].
        t = Trace()
        t.add(0, "compute", 0.0, 2.0)
        t.add(0, "compute", 1.5, 2.5)
        assert t.busy_time(0) == pytest.approx(2.5)
        assert t.utilization(0, 2.5) == pytest.approx(1.0)

    def test_duplicate_records_counted_once(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        t.add(0, "compute", 0.0, 1.0)
        assert t.busy_time(0) == pytest.approx(1.0)

    def test_merged_length(self):
        assert merged_length([]) == 0.0
        assert merged_length([(0.0, 1.0), (2.0, 3.0)]) == pytest.approx(2.0)
        assert merged_length([(0.0, 2.0), (1.0, 3.0)]) == pytest.approx(3.0)
        assert merged_length([(0.0, 1.0), (1.0, 2.0)]) == pytest.approx(2.0)
        assert merged_length([(0.0, 5.0), (1.0, 2.0)]) == pytest.approx(5.0)


class TestNumRanks:
    def test_idle_ranks_counted(self):
        # Regression: a rank with no CPU records used to vanish from
        # ranks(), biasing mean_utilization upward.
        t = Trace(num_ranks=4)
        t.add(0, "compute", 0.0, 10.0)
        assert t.ranks() == [0, 1, 2, 3]
        assert t.mean_utilization(10.0) == pytest.approx(0.25)

    def test_without_num_ranks_ranks_from_records(self):
        t = Trace()
        t.add(2, "compute", 0.0, 1.0)
        assert t.ranks() == [2]

    def test_invalid_num_ranks(self):
        with pytest.raises(ValueError):
            Trace(num_ranks=0)
        with pytest.raises(ValueError):
            Trace(num_ranks=-1)


class TestResourceLanes:
    def test_default_resource_is_cpu(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        assert t.records[0].resource == "cpu"

    def test_for_rank_filters_by_resource(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        t.add(0, "kernel_copy", 1.0, 2.0, resource="dma", term="B3")
        t.add(0, "wire", 2.0, 3.0, resource="nic_tx", term="B4")
        assert len(t.for_rank(0)) == 3
        assert [r.kind for r in t.for_rank(0, "dma")] == ["kernel_copy"]
        assert [r.kind for r in t.for_rank(0, "cpu")] == ["compute"]

    def test_resources_canonical_order(self):
        t = Trace()
        t.add(0, "wire", 0.0, 1.0, resource="nic_tx")
        t.add(0, "compute", 0.0, 1.0)
        t.add(0, "kernel_copy", 0.0, 1.0, resource="dma")
        assert t.resources() == ["cpu", "dma", "nic_tx"]
        for res in t.resources():
            assert res in RESOURCES

    def test_busy_time_per_resource(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        t.add(0, "kernel_copy", 0.0, 4.0, resource="dma")
        assert t.busy_time(0) == pytest.approx(1.0)
        assert t.busy_time(0, ["kernel_copy"], resource="dma") == pytest.approx(4.0)


class TestTermAttribution:
    def test_kind_terms_inferred(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        t.add(0, "fill_mpi_send", 1.0, 2.0)
        t.add(0, "blocked_recv", 2.0, 3.0)
        assert t.records[0].term == "A2"
        assert t.records[1].term == "A1"
        assert t.records[2].term == ""

    def test_explicit_term_overrides(self):
        t = Trace()
        t.add(0, "kernel_copy", 0.0, 1.0, resource="dma", term="B2")
        t.add(0, "fill_mpi_send", 1.0, 2.0, term="")
        assert t.records[0].term == "B2"
        assert t.records[1].term == ""

    def test_term_seconds(self):
        t = Trace()
        t.add(0, "compute", 0.0, 2.0)
        t.add(0, "fill_mpi_send", 2.0, 3.0)
        t.add(0, "wire", 3.0, 5.0, resource="nic_tx", term="B4")
        t.add(1, "compute", 0.0, 4.0)
        assert t.term_seconds(0) == {"A2": 2.0, "A1": 1.0, "B4": 2.0}
        assert t.term_seconds() == {"A2": 6.0, "A1": 1.0, "B4": 2.0}
        assert t.term_seconds(0, resource="cpu") == {"A2": 2.0, "A1": 1.0}

    def test_side_seconds(self):
        t = Trace()
        t.add(0, "compute", 0.0, 2.0)          # A2
        t.add(0, "fill_mpi_send", 2.0, 3.0)    # A1
        t.add(0, "kernel_copy", 3.0, 4.0, resource="dma", term="B3")
        t.add(0, "wire", 4.0, 6.0, resource="nic_tx", term="B4")
        a, b = t.side_seconds(0)
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(3.0)

    def test_term_partition_is_consistent(self):
        assert A_TERMS == {"A1", "A2", "A3"}
        assert B_TERMS == {"B1", "B2", "B3", "B4"}
        assert set(KIND_TERMS.values()) <= A_TERMS | B_TERMS


class TestChromeExport:
    def test_metadata_and_events(self):
        t = Trace()
        t.add(0, "compute", 0.0, 1e-6)
        t.add(0, "kernel_copy", 1e-6, 2e-6, resource="dma", term="B3")
        events = t.to_chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert names == {"CPU", "DMA engine"}
        assert len(xs) == 2
        # cpu is pid 0, dma pid 1 (canonical order)
        assert [e["pid"] for e in xs] == [0, 1]
        assert xs[1]["args"] == {"term": "B3"}
