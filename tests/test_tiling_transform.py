"""Tests for the supernode transformation H/P (paper §2.3)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.util.intmat import FractionMatrix
from repro.tiling.transform import TilingTransformation, rectangular_tiling


class TestConstruction:
    def test_from_p(self):
        t = TilingTransformation(P=FractionMatrix([[10, 0], [0, 10]]))
        assert t.H[0, 0] == Fraction(1, 10)

    def test_from_h(self):
        t = TilingTransformation(H=FractionMatrix([["1/10", 0], [0, "1/10"]]))
        assert t.P[0, 0] == 10

    def test_exactly_one_argument(self):
        m = FractionMatrix([[1, 0], [0, 1]])
        with pytest.raises(ValueError):
            TilingTransformation()
        with pytest.raises(ValueError):
            TilingTransformation(H=m, P=m)

    def test_singular_rejected(self):
        with pytest.raises(ValueError):
            TilingTransformation(P=FractionMatrix([[1, 1], [1, 1]]))
        with pytest.raises(ValueError):
            TilingTransformation(H=FractionMatrix([[1, 1], [1, 1]]))

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            TilingTransformation(P=FractionMatrix([[1, 0, 0], [0, 1, 0]]))

    def test_hp_mutually_inverse(self):
        t = rectangular_tiling([3, 5])
        assert t.H @ t.P == FractionMatrix([[1, 0], [0, 1]])


class TestRectangular:
    def test_sides_and_volume(self):
        t = rectangular_tiling([4, 4, 100])
        assert t.is_rectangular()
        assert t.tile_sides() == (4, 4, 100)
        assert t.tile_volume() == 1600

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            rectangular_tiling([4, 0])
        with pytest.raises(ValueError):
            rectangular_tiling([])

    def test_nonrectangular_detected(self):
        t = TilingTransformation(P=FractionMatrix([[2, 1], [0, 2]]))
        assert not t.is_rectangular()
        with pytest.raises(ValueError):
            t.tile_sides()

    def test_str(self):
        assert "10x10" in str(rectangular_tiling([10, 10]))


class TestTransformMap:
    def test_tile_of(self):
        t = rectangular_tiling([10, 10])
        assert t.tile_of((0, 0)) == (0, 0)
        assert t.tile_of((9, 9)) == (0, 0)
        assert t.tile_of((10, 9)) == (1, 0)
        assert t.tile_of((-1, 0)) == (-1, 0)

    def test_local_of(self):
        t = rectangular_tiling([10, 10])
        assert t.local_of((13, 7)) == (3, 7)
        assert t.local_of((-1, 0)) == (9, 0)

    def test_transform_pair(self):
        t = rectangular_tiling([4, 4])
        tile, local = t.transform((5, 2))
        assert tile == (1, 0)
        assert local == (1, 2)

    def test_tile_origin(self):
        t = rectangular_tiling([4, 8])
        assert t.tile_origin((2, 1)) == (8, 8)

    def test_skewed_tiling(self):
        # P columns (2,0) and (1,2): a parallelogram tile of area 4.
        t = TilingTransformation(P=FractionMatrix([[2, 1], [0, 2]]))
        assert t.tile_volume() == 4
        assert t.tile_of((0, 0)) == (0, 0)
        # j = P @ (1, 1) = (3, 2) is the origin of tile (1, 1).
        assert t.tile_of((3, 2)) == (1, 1)
        assert t.local_of((3, 2)) == (0, 0)


class TestLegality:
    def test_example1_legal(self):
        d = DependenceSet([(1, 1), (1, 0), (0, 1)])
        t = rectangular_tiling([10, 10])
        assert t.is_legal(d)
        assert t.contains_dependences(d)
        t.check_legal(d)

    def test_negative_dependence_illegal_for_rectangular(self):
        d = DependenceSet([(1, -1)])
        t = rectangular_tiling([10, 10])
        assert not t.is_legal(d)
        with pytest.raises(ValueError, match="illegal tiling"):
            t.check_legal(d)

    def test_skewed_tiling_legalises_negative_dependence(self):
        # d = (1, -1) is illegal for rectangular tiles but legal for a
        # tiling whose H rows are (1,0) and (1,1) scaled: H d >= 0.
        d = DependenceSet([(1, -1), (0, 1)])
        h = FractionMatrix([["1/4", 0], ["1/4", "1/4"]])
        t = TilingTransformation(H=h)
        assert t.is_legal(d)

    def test_containment_fails_for_large_dependence(self):
        d = DependenceSet([(5, 0)])
        t = rectangular_tiling([4, 4])
        assert t.is_legal(d)
        assert not t.contains_dependences(d)


_sides = st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=3)
_point3 = st.tuples(
    st.integers(-30, 30), st.integers(-30, 30), st.integers(-30, 30)
)


class TestProperties:
    @given(_sides, _point3)
    @settings(max_examples=80, deadline=None)
    def test_transform_roundtrip(self, sides, point):
        """r(j) decomposes j exactly: j = P·tile + local with local in the
        fundamental half-open box (0 <= H·local < 1)."""
        p = point[: len(sides)]
        t = rectangular_tiling(sides)
        tile, local = t.transform(p)
        origin = t.tile_origin(tile)
        assert tuple(o + l for o, l in zip(origin, local)) == tuple(
            Fraction(x) for x in p
        )
        h_local = t.H.matvec([float(x) for x in local])
        assert all(0 <= x < 1 for x in h_local)

    @given(_sides)
    @settings(max_examples=40, deadline=None)
    def test_volume_is_product_of_sides(self, sides):
        t = rectangular_tiling(sides)
        prod = 1
        for s in sides:
            prod *= s
        assert t.tile_volume() == prod
