"""Tests for the discrete-event engine."""

import pytest

from repro.sim.core import AllOf, Event, Simulator, Timeout, WaitEvent


class TestScheduling:
    def test_time_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        assert sim.run() == 3.0
        assert order == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        sim = Simulator()
        order = []
        for k in range(5):
            sim.schedule(1.0, lambda k=k: order.append(k))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        assert sim.run(until=2.0) == 2.0
        assert not fired
        sim.run()
        assert fired

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="livelock"):
            sim.run(max_events=100)

    @pytest.mark.parametrize("backend", ["heap", "calendar"])
    def test_max_events_exact_cutoff(self, backend):
        # Exactly max_events callbacks execute; the next one raises
        # *before* running, and event_count counts only executed ones.
        sim = Simulator(queue=backend)
        ran = []

        def reschedule():
            ran.append(sim.now)
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="livelock"):
            sim.run(max_events=7)
        assert len(ran) == 7
        assert sim.event_count == 7

    @pytest.mark.parametrize("backend", ["heap", "calendar"])
    def test_max_events_boundary_completes(self, backend):
        # A run needing exactly max_events callbacks must NOT raise.
        sim = Simulator(queue=backend)
        ran = []
        for k in range(7):
            sim.schedule(float(k), lambda k=k: ran.append(k))
        assert sim.run(max_events=7) == 6.0
        assert ran == list(range(7))
        assert sim.event_count == 7

    def test_schedule_call_at_fires_at_exact_instant(self):
        # schedule_call_at(t, ...) must land at *exactly* t — the
        # relative form now + (t - now) can round one ulp past t.
        sim = Simulator()
        hits = []
        sim.schedule_call_at(1.5, hits.append, "outer")
        sim.schedule(
            1.0, lambda: sim.schedule_call_at(1.5, hits.append, "inner")
        )
        t = 0.1 + 0.7  # 0.7999999999999999: now + (t - now) != t
        sim2 = Simulator()
        at = []
        sim2.schedule(
            0.1, lambda: sim2.schedule_call_at(t, lambda _: at.append(sim2.now),
                                               None)
        )
        assert sim.run() == 1.5
        assert hits == ["outer", "inner"]
        sim2.run()
        assert at == [t]

    def test_schedule_call_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule_call_at(0.5, lambda _: None, None)

    def test_schedule_call_at_current_instant_is_fifo(self):
        # At the current instant the call joins the zero-delay lane,
        # after anything already queued there.
        sim = Simulator()
        order = []

        def at_t1():
            sim.schedule_call(0.0, order.append, "queued-first")
            sim.schedule_call_at(sim.now, order.append, "then-at")

        sim.schedule(1.0, at_t1)
        sim.run()
        assert order == ["queued-first", "then-at"]

    def test_nested_scheduling_advances_time(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]


class TestEvents:
    def test_trigger_resumes_waiters(self):
        sim = Simulator()
        ev = Event(sim, "e")
        got = []
        ev.add_callback(got.append)
        sim.schedule(1.0, lambda: ev.trigger(42))
        sim.run()
        assert got == [42]

    def test_late_waiter_fires_immediately(self):
        sim = Simulator()
        ev = Event(sim, "e")
        ev.trigger("v")
        got = []
        ev.add_callback(got.append)
        sim.run()
        assert got == ["v"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = Event(sim)
        ev.trigger()
        with pytest.raises(RuntimeError):
            ev.trigger()


class TestProcesses:
    def test_timeout_sequence(self):
        sim = Simulator()
        ticks = []

        def proc():
            yield Timeout(1.0)
            ticks.append(sim.now)
            yield Timeout(2.5)
            ticks.append(sim.now)
            return "done"

        p = sim.spawn("p", proc())
        sim.run()
        assert ticks == [1.0, 3.5]
        assert p.finished and p.result == "done"
        assert p.finish_time == 3.5

    def test_timeout_result_passthrough(self):
        sim = Simulator()
        seen = []

        def proc():
            value = yield Timeout(1.0, result="payload")
            seen.append(value)

        sim.spawn("p", proc())
        sim.run()
        assert seen == ["payload"]

    def test_wait_event(self):
        sim = Simulator()
        ev = Event(sim)
        seen = []

        def waiter():
            v = yield WaitEvent(ev)
            seen.append((sim.now, v))

        sim.spawn("w", waiter())
        sim.schedule(4.0, lambda: ev.trigger("x"))
        sim.run()
        assert seen == [(4.0, "x")]

    def test_all_of(self):
        sim = Simulator()
        evs = [Event(sim) for _ in range(3)]
        seen = []

        def waiter():
            vals = yield AllOf(evs)
            seen.append((sim.now, vals))

        sim.spawn("w", waiter())
        for k, ev in enumerate(evs):
            sim.schedule(float(k + 1), lambda ev=ev, k=k: ev.trigger(k))
        sim.run()
        assert seen == [(3.0, [0, 1, 2])]

    def test_all_of_annotation_reported(self):
        """Regression: AllOf accepted an annotation but dropped it, so
        deadlock diagnostics showed the generic all_of(n) label."""
        sim = Simulator()
        evs = [Event(sim) for _ in range(2)]

        def stuck():
            yield AllOf(evs, annotation="gathering both halves")

        p = sim.spawn("s", stuck())
        sim.run()
        assert p.waiting_on == "gathering both halves"
        with pytest.raises(RuntimeError, match="gathering both halves"):
            sim.check_all_finished()

    def test_all_of_default_annotation(self):
        sim = Simulator()
        evs = [Event(sim) for _ in range(3)]

        def stuck():
            yield AllOf(evs)

        p = sim.spawn("s", stuck())
        sim.run()
        assert p.waiting_on == "all_of(3)"

    def test_all_of_empty(self):
        sim = Simulator()
        seen = []

        def waiter():
            vals = yield AllOf([])
            seen.append(vals)

        sim.spawn("w", waiter())
        sim.run()
        assert seen == [[]]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_non_effect_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield "not an effect"

        sim.spawn("p", proc())
        with pytest.raises(TypeError, match="expected an Effect"):
            sim.run()

    def test_deadlock_detection(self):
        sim = Simulator()
        ev = Event(sim, "never")

        def stuck():
            yield WaitEvent(ev, annotation="waiting forever")

        sim.spawn("s", stuck())
        sim.run()
        with pytest.raises(RuntimeError, match="deadlock.*waiting forever"):
            sim.check_all_finished()

    def test_determinism(self):
        """Two identical runs produce identical event interleavings."""

        def build():
            sim = Simulator()
            log = []

            def proc(name, delay):
                yield Timeout(delay)
                log.append((name, sim.now))
                yield Timeout(delay)
                log.append((name, sim.now))

            for k in range(4):
                sim.spawn(f"p{k}", proc(f"p{k}", 1.0 + k * 0.5))
            sim.run()
            return log

        assert build() == build()
