"""Tests for the discrete-event engine."""

import pytest

from repro.sim.core import AllOf, Event, Simulator, Timeout, WaitEvent


class TestScheduling:
    def test_time_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        assert sim.run() == 3.0
        assert order == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        sim = Simulator()
        order = []
        for k in range(5):
            sim.schedule(1.0, lambda k=k: order.append(k))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        assert sim.run(until=2.0) == 2.0
        assert not fired
        sim.run()
        assert fired

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="livelock"):
            sim.run(max_events=100)

    def test_nested_scheduling_advances_time(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]


class TestEvents:
    def test_trigger_resumes_waiters(self):
        sim = Simulator()
        ev = Event(sim, "e")
        got = []
        ev.add_callback(got.append)
        sim.schedule(1.0, lambda: ev.trigger(42))
        sim.run()
        assert got == [42]

    def test_late_waiter_fires_immediately(self):
        sim = Simulator()
        ev = Event(sim, "e")
        ev.trigger("v")
        got = []
        ev.add_callback(got.append)
        sim.run()
        assert got == ["v"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = Event(sim)
        ev.trigger()
        with pytest.raises(RuntimeError):
            ev.trigger()


class TestProcesses:
    def test_timeout_sequence(self):
        sim = Simulator()
        ticks = []

        def proc():
            yield Timeout(1.0)
            ticks.append(sim.now)
            yield Timeout(2.5)
            ticks.append(sim.now)
            return "done"

        p = sim.spawn("p", proc())
        sim.run()
        assert ticks == [1.0, 3.5]
        assert p.finished and p.result == "done"
        assert p.finish_time == 3.5

    def test_timeout_result_passthrough(self):
        sim = Simulator()
        seen = []

        def proc():
            value = yield Timeout(1.0, result="payload")
            seen.append(value)

        sim.spawn("p", proc())
        sim.run()
        assert seen == ["payload"]

    def test_wait_event(self):
        sim = Simulator()
        ev = Event(sim)
        seen = []

        def waiter():
            v = yield WaitEvent(ev)
            seen.append((sim.now, v))

        sim.spawn("w", waiter())
        sim.schedule(4.0, lambda: ev.trigger("x"))
        sim.run()
        assert seen == [(4.0, "x")]

    def test_all_of(self):
        sim = Simulator()
        evs = [Event(sim) for _ in range(3)]
        seen = []

        def waiter():
            vals = yield AllOf(evs)
            seen.append((sim.now, vals))

        sim.spawn("w", waiter())
        for k, ev in enumerate(evs):
            sim.schedule(float(k + 1), lambda ev=ev, k=k: ev.trigger(k))
        sim.run()
        assert seen == [(3.0, [0, 1, 2])]

    def test_all_of_annotation_reported(self):
        """Regression: AllOf accepted an annotation but dropped it, so
        deadlock diagnostics showed the generic all_of(n) label."""
        sim = Simulator()
        evs = [Event(sim) for _ in range(2)]

        def stuck():
            yield AllOf(evs, annotation="gathering both halves")

        p = sim.spawn("s", stuck())
        sim.run()
        assert p.waiting_on == "gathering both halves"
        with pytest.raises(RuntimeError, match="gathering both halves"):
            sim.check_all_finished()

    def test_all_of_default_annotation(self):
        sim = Simulator()
        evs = [Event(sim) for _ in range(3)]

        def stuck():
            yield AllOf(evs)

        p = sim.spawn("s", stuck())
        sim.run()
        assert p.waiting_on == "all_of(3)"

    def test_all_of_empty(self):
        sim = Simulator()
        seen = []

        def waiter():
            vals = yield AllOf([])
            seen.append(vals)

        sim.spawn("w", waiter())
        sim.run()
        assert seen == [[]]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_non_effect_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield "not an effect"

        sim.spawn("p", proc())
        with pytest.raises(TypeError, match="expected an Effect"):
            sim.run()

    def test_deadlock_detection(self):
        sim = Simulator()
        ev = Event(sim, "never")

        def stuck():
            yield WaitEvent(ev, annotation="waiting forever")

        sim.spawn("s", stuck())
        sim.run()
        with pytest.raises(RuntimeError, match="deadlock.*waiting forever"):
            sim.check_all_finished()

    def test_determinism(self):
        """Two identical runs produce identical event interleavings."""

        def build():
            sim = Simulator()
            log = []

            def proc(name, delay):
                yield Timeout(delay)
                log.append((name, sim.now))
                yield Timeout(delay)
                log.append((name, sim.now))

            for k in range(4):
                sim.spawn(f"p{k}", proc(f"p{k}", 1.0 + k * 0.5))
            sim.run()
            return log

        assert build() == build()
