"""Tests for ASCII Gantt charts and sweep plots."""

import pytest

from repro.sim.tracing import Trace
from repro.viz.ascii_plots import ascii_xy_plot, plot_sweep
from repro.viz.gantt import render_gantt, render_utilization


def _trace():
    t = Trace()
    t.add(0, "compute", 0.0, 5.0, "tile0")
    t.add(0, "fill_mpi_send", 5.0, 6.0)
    t.add(0, "blocked_recv", 6.0, 10.0)
    t.add(1, "compute", 2.0, 10.0)
    return t


class TestGantt:
    def test_row_per_rank(self):
        out = render_gantt(_trace(), width=20)
        lines = out.splitlines()
        assert lines[0].startswith("P0")
        assert lines[1].startswith("P1")

    def test_glyphs_present(self):
        out = render_gantt(_trace(), width=40)
        row0 = out.splitlines()[0]
        assert "#" in row0 and "s" in row0 and "." in row0

    def test_priority_compute_wins(self):
        t = Trace()
        t.add(0, "blocked_recv", 0.0, 10.0)
        t.add(0, "compute", 0.0, 10.0)
        row = render_gantt(t, width=10, legend=False).splitlines()[0]
        assert "#" in row and "." not in row

    def test_empty_trace(self):
        assert render_gantt(Trace()) == "(empty trace)"

    def test_legend_toggle(self):
        assert "compute" in render_gantt(_trace())
        assert "compute" not in render_gantt(_trace(), legend=False)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_gantt(_trace(), width=0)

    def test_utilization_report(self):
        out = render_utilization(_trace())
        assert "P0" in out and "mean" in out
        assert "sumA" in out  # term columns present for termed traces
        assert render_utilization(Trace()) == "(empty trace)"


class TestGanttBinning:
    def test_zero_duration_record_paints_nothing(self):
        # Regression: a zero-duration record used to paint a full bin.
        t = Trace()
        t.add(0, "blocked_recv", 0.0, 10.0)
        t.add(0, "compute", 5.0, 5.0)
        row = render_gantt(t, width=10, legend=False).splitlines()[0]
        assert "#" not in row

    def test_half_open_end_on_bin_boundary(self):
        # Regression: the old `end - 1e-15` epsilon hack vanishes in
        # float rounding at large times, spilling a record into the bin
        # after its half-open end.
        t = Trace()
        t.add(0, "compute", 0.0, 500000.0)
        t.add(0, "blocked_recv", 500000.0, 1000000.0)
        row = render_gantt(t, width=2, legend=False).splitlines()[0]
        assert row == "P0   |#.|"

    def test_record_ending_at_horizon(self):
        t = Trace()
        t.add(0, "compute", 0.0, 4.0)
        row = render_gantt(t, width=4, legend=False).splitlines()[0]
        assert row == "P0   |####|"

    def test_tiny_timescale_boundary(self):
        # Sub-epsilon timescales: absolute 1e-15 hacks break down here.
        t = Trace()
        t.add(0, "compute", 0.0, 1e-13)
        t.add(0, "blocked_recv", 1e-13, 2e-13)
        row = render_gantt(t, width=2, legend=False).splitlines()[0]
        assert row == "P0   |#.|"


class TestGanttResourceLanes:
    def test_hw_rows_rendered(self):
        t = _trace()
        t.add(0, "kernel_copy", 5.0, 6.0, resource="dma", term="B3")
        t.add(0, "wire", 6.0, 8.0, resource="nic_tx", term="B4")
        out = render_gantt(t, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("P0   |")
        assert lines[1].startswith(" dma |")
        assert "d" in lines[1]
        assert lines[2].startswith(" tx  |")
        assert "w" in lines[2]
        # rank 1 has no hardware records: no hw rows under it
        assert lines[3].startswith("P1   |")
        assert "d DMA kernel copy" in out

    def test_cpu_only_trace_has_no_hw_rows(self):
        out = render_gantt(_trace(), width=20, legend=False)
        assert all(ln.startswith("P") for ln in out.splitlines())


class TestAsciiPlot:
    def test_basic_plot(self):
        out = ascii_xy_plot(
            [("alpha", [1, 10, 100], [3.0, 1.0, 2.0]),
             ("beta", [1, 10, 100], [4.0, 2.0, 3.0])],
            width=30, height=10,
        )
        assert "a" in out and "b" in out
        assert "a=alpha" in out
        assert "log scale" in out

    def test_linear_x(self):
        out = ascii_xy_plot([("s", [0, 1, 2], [1.0, 2.0, 3.0])], logx=False)
        assert "log scale" not in out

    def test_logx_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_xy_plot([("s", [0, 1], [1.0, 2.0])], logx=True)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_xy_plot([("s", [1, 2], [1.0])])

    def test_empty(self):
        assert ascii_xy_plot([]) == "(no data)"

    def test_canvas_validation(self):
        with pytest.raises(ValueError):
            ascii_xy_plot([("s", [1], [1.0])], width=5, height=2)

    def test_flat_series(self):
        out = ascii_xy_plot([("s", [1, 10], [2.0, 2.0])])
        assert "max=2" in out

    def test_plot_sweep(self):
        from repro.experiments.figures import sweep
        from repro.ir.loopnest import IterationSpace
        from repro.kernels.stencil import sqrt_kernel_3d
        from repro.kernels.workloads import StencilWorkload
        from repro.model.machine import pentium_cluster

        w = StencilWorkload(
            "p", IterationSpace.from_extents([4, 4, 256]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        r = sweep(w, pentium_cluster(), heights=[8, 32, 64])
        out = plot_sweep(r)
        assert "tile height V" in out
        assert "n=non-overlapping (sim)" in out
