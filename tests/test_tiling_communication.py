"""Tests for communication-volume formulas (1) and (2)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dependence import DependenceSet
from repro.tiling.communication import (
    communication_bytes,
    communication_fraction,
    communication_volume,
    face_communication_volume,
)
from repro.tiling.transform import rectangular_tiling


class TestPaperExample1:
    """Example 1: 10×10 tiles, D = {(1,1),(1,0),(0,1)}, mapping along i1."""

    def setup_method(self):
        self.tiling = rectangular_tiling([10, 10])
        self.deps = DependenceSet([(1, 1), (1, 0), (0, 1)])

    def test_formula_2_gives_20(self):
        assert communication_volume(self.tiling, self.deps, mapped_dim=0) == 20

    def test_formula_1_counts_both_faces(self):
        assert communication_volume(self.tiling, self.deps) == 40

    def test_bytes(self):
        assert communication_bytes(self.tiling, self.deps, 4, mapped_dim=0) == 80

    def test_per_face(self):
        assert face_communication_volume(self.tiling, self.deps, 0) == 20
        assert face_communication_volume(self.tiling, self.deps, 1) == 20

    def test_fraction_independent_of_volume_scaling(self):
        """Boulet et al.: the ratio V_comm/V_comp depends on shape only."""
        small = rectangular_tiling([10, 10])
        large = rectangular_tiling([30, 30])
        f_small = communication_fraction(small, self.deps)
        f_large = communication_fraction(large, self.deps)
        assert f_small == 3 * f_large  # ratio scales as 1/side


class TestValidation:
    def test_illegal_tiling_raises(self):
        t = rectangular_tiling([4, 4])
        d = DependenceSet([(1, -1)])
        with pytest.raises(ValueError):
            communication_volume(t, d)

    def test_bad_mapped_dim(self):
        t = rectangular_tiling([4, 4])
        d = DependenceSet([(1, 0)])
        with pytest.raises(ValueError):
            communication_volume(t, d, mapped_dim=2)
        with pytest.raises(ValueError):
            communication_fraction(t, d, mapped_dim=-1)

    def test_bad_face_dim(self):
        t = rectangular_tiling([4, 4])
        d = DependenceSet([(1, 0)])
        with pytest.raises(ValueError):
            face_communication_volume(t, d, 2)

    def test_bad_bytes(self):
        t = rectangular_tiling([4, 4])
        d = DependenceSet([(1, 0)])
        with pytest.raises(ValueError):
            communication_bytes(t, d, 0)


class TestExactness:
    def test_3d_paper_tile(self):
        """4×4×V tile of the §5 stencil sends 4V elements per face pair."""
        d = DependenceSet([(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        v = 444
        t = rectangular_tiling([4, 4, v])
        assert face_communication_volume(t, d, 0) == 4 * v
        assert face_communication_volume(t, d, 1) == 4 * v
        assert face_communication_volume(t, d, 2) == 16
        assert communication_volume(t, d, mapped_dim=2) == 8 * v

    def test_diagonal_dependence_counts_both_rows(self):
        d = DependenceSet([(1, 1)])
        t = rectangular_tiling([5, 5])
        assert communication_volume(t, d) == 10


_side = st.integers(min_value=1, max_value=8)
_dep = st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(any)


class TestProperties:
    @given(st.tuples(_side, _side), st.lists(_dep, min_size=1, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_formula_matches_crossing_count(self, sides, vecs):
        """Formula (1) literally counts dependence instances leaving the
        tile: for each in-tile point and each dependence, count boundary
        rows crossed."""
        t = rectangular_tiling(list(sides))
        d = DependenceSet(vecs)
        expected = Fraction(0)
        from repro.tiling.dependences import first_tile_points

        for j0 in first_tile_points(t):
            for vec in d.vectors:
                dest = t.tile_of(tuple(a + b for a, b in zip(j0, vec)))
                # one crossing per dimension stepped, weighted by steps
                expected += sum(dest)
        assert communication_volume(t, d) == expected

    @given(st.tuples(_side, _side), st.lists(_dep, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_mapped_volume_never_exceeds_total(self, sides, vecs):
        t = rectangular_tiling(list(sides))
        d = DependenceSet(vecs)
        total = communication_volume(t, d)
        assert communication_volume(t, d, mapped_dim=0) <= total
        assert communication_volume(t, d, mapped_dim=1) <= total
        assert (
            communication_volume(t, d, mapped_dim=0)
            + face_communication_volume(t, d, 0)
            == total
        )
