"""Network traffic statistics and the warm-step model property."""

import pytest

from repro.model.costs import step_costs
from repro.model.machine import Machine, pentium_cluster
from repro.sim.core import Simulator
from repro.sim.network import Network


def _machine(**kw):
    defaults = dict(t_c=1e-6, t_s=0.0, t_t=1e-6, network_latency=0.0)
    defaults.update(kw)
    return Machine(**defaults)


class TestNetworkStats:
    def test_per_node_byte_accounting(self):
        sim = Simulator()
        net = Network(sim, _machine(), 3)
        net.transmit(0, 1, 100)
        net.transmit(0, 2, 200)
        net.transmit(2, 1, 50)
        sim.run()
        s = net.stats()
        assert s["messages"] == 3
        assert s["bytes"] == 350
        assert s["tx_bytes"] == (300, 0, 50)
        assert s["rx_bytes"] == (0, 150, 200)

    def test_latency_distribution(self):
        sim = Simulator()
        net = Network(sim, _machine(network_latency=0.25), 2)
        net.transmit(0, 1, 1000)  # TX 1 ms + 0.25 + RX 1 ms
        net.transmit(0, 1, 1000)  # queues behind the first TX
        sim.run()
        s = net.stats()
        assert s["latency_min"] == pytest.approx(0.252)
        assert s["latency_max"] > s["latency_min"]
        assert s["latency_min"] <= s["latency_median"] <= s["latency_max"]

    def test_empty_stats(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        s = net.stats()
        assert s["messages"] == 0
        assert s["latency_median"] == 0.0

    def test_loopback_not_in_latencies(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        net.transmit(1, 1, 1000)
        sim.run()
        s = net.stats()
        assert s["messages"] == 1
        assert s["latency_max"] == 0.0  # no wire latency recorded


class TestWarmStepModel:
    def test_between_cpu_and_serialized(self):
        sc = step_costs(pentium_cluster(), 1000, [2048, 2048])
        assert sc.cpu_side <= sc.warm_serialized_step <= sc.serialized_step

    def test_difference_is_exactly_b2(self):
        sc = step_costs(pentium_cluster(), 1000, [2048, 2048])
        assert sc.serialized_step - sc.warm_serialized_step == pytest.approx(
            sc.b2_fill_kernel_recv
        )

    def test_no_messages_degenerates_to_compute(self):
        sc = step_costs(pentium_cluster(), 500, [])
        assert sc.warm_serialized_step == sc.a2_compute
