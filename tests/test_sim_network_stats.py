"""Network traffic statistics and the warm-step model property."""

import pytest

from repro.model.costs import step_costs
from repro.model.machine import Machine, pentium_cluster
from repro.sim.core import Simulator
from repro.sim.network import Network


def _machine(**kw):
    defaults = dict(t_c=1e-6, t_s=0.0, t_t=1e-6, network_latency=0.0)
    defaults.update(kw)
    return Machine(**defaults)


class TestNetworkStats:
    def test_per_node_byte_accounting(self):
        sim = Simulator()
        net = Network(sim, _machine(), 3)
        net.transmit(0, 1, 100)
        net.transmit(0, 2, 200)
        net.transmit(2, 1, 50)
        sim.run()
        s = net.stats()
        assert s["messages"] == 3
        assert s["bytes"] == 350
        assert s["tx_bytes"] == (300, 0, 50)
        assert s["rx_bytes"] == (0, 150, 200)

    def test_latency_distribution(self):
        sim = Simulator()
        net = Network(sim, _machine(network_latency=0.25), 2)
        net.transmit(0, 1, 1000)  # TX 1 ms + 0.25 + RX 1 ms
        net.transmit(0, 1, 1000)  # queues behind the first TX
        sim.run()
        s = net.stats()
        assert s["latency_min"] == pytest.approx(0.252)
        assert s["latency_max"] > s["latency_min"]
        assert s["latency_min"] <= s["latency_median"] <= s["latency_max"]

    def test_empty_stats(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        s = net.stats()
        assert s["messages"] == 0
        assert s["latency_median"] == 0.0

    def test_loopback_not_in_latencies(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        net.transmit(1, 1, 1000)
        sim.run()
        s = net.stats()
        # Self-sends never touch a NIC or the wire: they live in the
        # loopback counters, not the fabric-traffic ones.
        assert s["messages"] == 0
        assert s["loopback_messages"] == 1
        assert s["loopback_bytes"] == 1000
        assert s["latency_max"] == 0.0  # no wire latency recorded

    def test_even_count_median_interpolates(self):
        # Two serialized equal messages: latencies 0.002 and 0.003 (TX +
        # RX legs; the second queues one wire time behind the first).
        # The even-n median is their midpoint, not either sample.
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        net.transmit(0, 1, 1000)
        net.transmit(0, 1, 1000)
        sim.run()
        s = net.stats()
        assert s["latency_median"] == pytest.approx(0.0025)

    def test_percentiles_ordered_and_interpolated(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        for _ in range(20):  # queueing spreads the latency distribution
            net.transmit(0, 1, 1000)
        sim.run()
        s = net.stats()
        assert (
            s["latency_min"]
            <= s["latency_median"]
            <= s["latency_p95"]
            <= s["latency_p99"]
            <= s["latency_max"]
        )
        assert s["latency_p95"] > s["latency_median"]

    def test_percentiles_empty(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        s = net.stats()
        assert s["latency_p95"] == 0.0
        assert s["latency_p99"] == 0.0

    def test_reliability_counters_default_zero(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        s = net.stats()
        assert s["retransmits"] == 0
        assert s["duplicates"] == 0

    def test_reliability_counters_reported(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        net.retransmits = 3
        net.duplicates = 1
        s = net.stats()
        assert s["retransmits"] == 3
        assert s["duplicates"] == 1


def _spread_traffic(net, messages=200):
    """Queueing behind shared NICs spreads the latency distribution:
    message k from rank k%3 waits behind its predecessors."""
    for k in range(messages):
        net.transmit(k % 3, 3, 500 + 40 * (k % 7))


class TestLatencySampleCap:
    def test_capped_min_max_exact_percentiles_close(self):
        """Exact extremes survive any decimation: min/max are tracked as
        running values, not read from the (stride-thinned) sample."""
        sim = Simulator()
        full = Network(sim, _machine(), 4)
        _spread_traffic(full)
        sim.run()

        sim2 = Simulator()
        capped = Network(sim2, _machine(), 4)
        capped.cap_latency_samples(32)
        _spread_traffic(capped)
        sim2.run()

        fs, cs = full.stats(), capped.stats()
        assert len(capped._latencies) <= 32
        assert cs["latency_min"] == fs["latency_min"]
        assert cs["latency_max"] == fs["latency_max"]
        # The decimated sample still estimates the upper tail well.
        for q in ("latency_median", "latency_p95", "latency_p99"):
            assert cs[q] == pytest.approx(fs[q], rel=0.15)

    def test_late_cap_decimates_eagerly(self):
        """Engaging the cap after samples accumulated must shrink the
        buffer at call time, not on some later record."""
        sim = Simulator()
        net = Network(sim, _machine(), 4)
        _spread_traffic(net, messages=300)
        sim.run()
        before = net.stats()
        assert len(net._latencies) == 300

        net.cap_latency_samples(64)
        assert len(net._latencies) <= 64
        assert net._latency_stride > 1
        after = net.stats()
        assert after["latency_min"] == before["latency_min"]
        assert after["latency_max"] == before["latency_max"]

    def test_cap_validation(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        with pytest.raises(ValueError):
            net.cap_latency_samples(0)


class TestFaultyWire:
    def test_degradation_window_scales_wire_time(self):
        from repro.sim.faults import Degradation, FaultPlan

        plan = FaultPlan(degradations=(Degradation(0.0, 10.0, 4.0),))
        sim = Simulator()
        net = Network(sim, _machine(), 2, faults=plan)
        done = {}
        net.transmit(0, 1, 1000).add_callback(
            lambda iv: done.setdefault("t", sim.now)
        )
        sim.run()
        # 4x both wire legs: 2 * 4 * 0.001
        assert done["t"] == pytest.approx(0.008)

    def test_extra_latency_validated(self):
        sim = Simulator()
        net = Network(sim, _machine(), 2)
        with pytest.raises(ValueError):
            net.transmit(0, 1, 10, extra_latency=-1.0)


class TestWarmStepModel:
    def test_between_cpu_and_serialized(self):
        sc = step_costs(pentium_cluster(), 1000, [2048, 2048])
        assert sc.cpu_side <= sc.warm_serialized_step <= sc.serialized_step

    def test_difference_is_exactly_b2(self):
        sc = step_costs(pentium_cluster(), 1000, [2048, 2048])
        assert sc.serialized_step - sc.warm_serialized_step == pytest.approx(
            sc.b2_fill_kernel_recv
        )

    def test_no_messages_degenerates_to_compute(self):
        sc = step_costs(pentium_cluster(), 500, [])
        assert sc.warm_serialized_step == sc.a2_compute
