"""Tests for the autotuner's candidate generation (seeds, grids, work
accounting)."""

import math

import pytest

from repro.experiments.figures import default_heights
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.tuning import (
    exhaustive_heights,
    grid_candidates,
    grid_comm_volume,
    height_bounds,
    rank_grids,
    regrid,
    seed_heights,
    shape_fraction_bound,
    simulated_tile_steps,
    sweep_equivalent_steps,
)
from repro.tuning.candidates import model_time


def _workload(extents=(8, 8, 1024), procs=(2, 2, 1), name="tune-cand"):
    return StencilWorkload(
        name, IterationSpace.from_extents(list(extents)),
        sqrt_kernel_3d(), procs, len(extents) - 1,
    )


@pytest.fixture(scope="module")
def machine():
    return pentium_cluster()


class TestWorkAccounting:
    def test_tile_steps_formula(self):
        w = _workload()
        assert simulated_tile_steps(w, 64) == 4 * math.ceil(1024 / 64)
        assert simulated_tile_steps(w, 1000) == 4 * 2  # ceil, not floor

    def test_tile_steps_validation(self):
        with pytest.raises(ValueError):
            simulated_tile_steps(_workload(), 0)

    def test_exhaustive_heights_is_the_sweep_grid(self):
        w = _workload()
        assert exhaustive_heights(w, max_points=32) == default_heights(
            w, max_points=32
        )

    def test_sweep_equivalent_steps_sums_the_grid(self):
        w = _workload()
        heights = exhaustive_heights(w)
        assert sweep_equivalent_steps(w) == sum(
            simulated_tile_steps(w, v) for v in heights
        )
        assert sweep_equivalent_steps(w, [4, 8]) == (
            simulated_tile_steps(w, 4) + simulated_tile_steps(w, 8)
        )


class TestHeightBounds:
    def test_paper_interval(self):
        lo, hi = height_bounds(_workload())
        assert (lo, hi) == (4, 256)

    def test_shallow_extent_degenerates_gracefully(self):
        lo, hi = height_bounds(_workload(extents=(8, 8, 2), procs=(2, 2, 1)))
        assert lo == 2 and hi >= lo


class TestSeedHeights:
    def test_model_prior_comes_first(self, machine):
        seeds = seed_heights(_workload(), machine, overlap=True)
        assert seeds and seeds[0].origin == "model"

    def test_within_bounds_and_deduplicated(self, machine):
        w = _workload()
        lo, hi = height_bounds(w)
        for overlap in (True, False):
            seeds = seed_heights(w, machine, overlap=overlap)
            vs = [s.v for s in seeds]
            assert all(lo <= v <= hi for v in vs)
            assert len(vs) == len(set(vs))

    def test_purely_analytic_origins(self, machine):
        origins = {s.origin for s in
                   seed_heights(_workload(), machine, overlap=True)}
        assert origins <= {"model", "crossover", "closed-form", "comm-min"}


class TestGrids:
    def test_candidates_factorize_processor_count(self):
        w = _workload(extents=(8, 64, 256), procs=(4, 4, 1))
        grids = grid_candidates(w)
        assert grids == sorted(set(grids))
        for g in grids:
            assert math.prod(g) == w.num_processors
            assert g[w.mapped_dim] == 1
            assert all(e % p == 0 for e, p in zip(w.space.extents, g))
        assert (4, 4, 1) in grids and (2, 8, 1) in grids

    def test_regrid_preserves_kernel_and_space(self):
        w = _workload(extents=(8, 64, 256), procs=(4, 4, 1))
        w2 = regrid(w, (2, 8, 1))
        assert w2.kernel is w.kernel  # engine pooling keys off the kernel
        assert w2.space is w.space
        assert w2.procs_per_dim == (2, 8, 1)
        assert w2.name == f"{w.name}@2x8x1"
        assert regrid(w, w.procs_per_dim) is w

    def test_rank_grids_sorted_by_model(self, machine):
        w = _workload(extents=(8, 64, 256), procs=(4, 4, 1))
        ranked = rank_grids(w, machine, overlap=True)
        times = [t for _, t, _ in ranked]
        assert times == sorted(times)
        assert {g for g, _, _ in ranked} <= set(grid_candidates(w))

    def test_comm_volume_positive_and_shape_sensitive(self):
        w = _workload(extents=(8, 64, 256), procs=(4, 4, 1))
        v44 = grid_comm_volume(w, (4, 4, 1), 16)
        v28 = grid_comm_volume(w, (2, 8, 1), 16)
        assert v44 > 0 and v28 > 0
        assert v44 != v28  # anisotropic space: shape moves the volume


class TestShapeBound:
    def test_fraction_bound_is_a_fraction(self):
        w = _workload()
        bound = shape_fraction_bound(w, 1024.0)
        assert bound is None or 0.0 < bound < 1.0


class TestModelTime:
    def test_positive_and_schedule_sensitive(self, machine):
        w = _workload()
        t_ovl = model_time(w, machine, 64, overlap=True)
        t_non = model_time(w, machine, 64, overlap=False)
        assert 0 < t_ovl <= t_non
