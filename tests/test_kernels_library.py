"""The kernel library: semantics, codegen support, distributed runs."""

import numpy as np
import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.library import (
    all_library_kernels,
    anisotropic_3d,
    binomial_2d,
    gauss_seidel_2d,
    lcs_kernel_2d,
    sum_kernel_4d,
    weighted_stencil,
)
from repro.kernels.stencil import sequential_reference
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import pentium_cluster
from repro.runtime.verify import verify_workload


class TestKernelSemantics:
    def test_binomial_builds_pascals_triangle(self):
        """With an all-ones boundary, row sums double like 2^i (each row's
        interior value is the sum of the two above it)."""
        ref = sequential_reference(binomial_2d(), IterationSpace.from_extents([4, 6]))
        # Interior far from the right boundary behaves like Pascal: value
        # at (i, j) counts lattice paths — check a couple directly.
        assert ref[0, 0] == 2.0  # 1 + 1 boundary
        assert ref[1, 1] == ref[0, 1] + ref[0, 0]
        assert ref[3, 4] == ref[2, 4] + ref[2, 3]

    def test_gauss_seidel_bounded(self):
        ref = sequential_reference(
            gauss_seidel_2d(), IterationSpace.from_extents([20, 20])
        )
        assert np.all(ref <= 1.0 + 1e-12)
        assert np.all(ref > 0.0)

    def test_gauss_seidel_omega_validation(self):
        with pytest.raises(ValueError):
            gauss_seidel_2d(omega=0.0)

    def test_lcs_monotone(self):
        """The LCS DP is monotone along both axes."""
        ref = sequential_reference(lcs_kernel_2d(), IterationSpace.from_extents([6, 6]))
        assert np.all(np.diff(ref, axis=0) >= 0)
        assert np.all(np.diff(ref, axis=1) >= 0)
        # Diagonal chain: value grows by exactly the bonus along it.
        assert ref[5, 5] == 6.0

    def test_anisotropic_dependences(self):
        k = anisotropic_3d()
        assert (1, 0, 1) in k.dependence_set()
        assert k.halo == (1, 1, 1)

    def test_sum4d_reference(self):
        ref = sequential_reference(
            sum_kernel_4d(), IterationSpace.from_extents([2, 2, 2, 2])
        )
        assert ref[0, 0, 0, 0] == pytest.approx(1.0)  # 0.25 × 4 boundary 1s

    def test_weighted_stencil(self):
        k = weighted_stencil([(-1, 0), (0, -1)], [2.0, 3.0])
        ref = sequential_reference(k, IterationSpace.from_extents([2, 2]))
        assert ref[0, 0] == pytest.approx(5.0)
        assert ref[0, 1] == pytest.approx(2.0 + 3.0 * 5.0)

    def test_weighted_stencil_validation(self):
        with pytest.raises(ValueError):
            weighted_stencil([(-1, 0)], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_stencil([], [])

    def test_all_library_kernels_are_lex_valid(self):
        for k in all_library_kernels():
            assert k.dependence_set().all_lexicographically_positive()


class TestDistributedLibraryKernels:
    """Every library kernel that fits the runtime's routing restriction
    must verify bit-exactly under both schedules."""

    @pytest.mark.parametrize("blocking", [True, False])
    def test_gauss_seidel(self, blocking):
        w = StencilWorkload(
            "gs", IterationSpace.from_extents([24, 12]),
            gauss_seidel_2d(), (1, 4), 0,
        )
        rb, rp = verify_workload(w, 6, pentium_cluster())
        assert (rb if blocking else rp).passed

    def test_binomial(self):
        w = StencilWorkload(
            "bin", IterationSpace.from_extents([32, 8]),
            binomial_2d(), (1, 2), 0,
        )
        rb, rp = verify_workload(w, 8, pentium_cluster())
        assert rb.passed and rp.passed

    def test_lcs(self):
        w = StencilWorkload(
            "lcs", IterationSpace.from_extents([16, 16]),
            lcs_kernel_2d(), (1, 4), 0,
        )
        rb, rp = verify_workload(w, 4, pentium_cluster())
        assert rb.passed and rp.passed

    def test_anisotropic_3d(self):
        """(1,0,1) couples a cross dimension with the mapped one — legal
        for the runtime's single-cross-dimension routing."""
        w = StencilWorkload(
            "aniso", IterationSpace.from_extents([8, 8, 24]),
            anisotropic_3d(), (2, 2, 1), 2,
        )
        rb, rp = verify_workload(w, 6, pentium_cluster())
        assert rb.passed, rb.describe()
        assert rp.passed, rp.describe()

    def test_sum4d(self):
        w = StencilWorkload(
            "s4", IterationSpace.from_extents([4, 4, 4, 16]),
            sum_kernel_4d(), (2, 2, 1, 1), 3,
        )
        rb, rp = verify_workload(w, 4, pentium_cluster())
        assert rb.passed and rp.passed
