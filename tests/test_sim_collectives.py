"""Collective operations: value semantics, non-power-of-2 groups,
determinism, the dissemination barrier, and fault injection on
collective legs (ARQ recovery and watchdog classification)."""

import operator

import pytest

from repro.model.machine import Machine
from repro.sim.collectives import COLLECTIVE_TAG_BASE
from repro.sim.faults import FaultPlan, LinkFaults
from repro.sim.mpi import World
from repro.sim.reliable import ReliableConfig

pytestmark = pytest.mark.collectives


def _machine(**kw):
    defaults = dict(t_c=1e-6, t_s=0.0, t_t=1e-6, network_latency=1e-4,
                    duplex=True, dma=True)
    defaults.update(kw)
    return Machine(**defaults)


def _run(n, prog_factory, **world_kw):
    """Run the same program on ``n`` ranks; returns (world, results)."""
    w = World(_machine(), n, **world_kw)
    results = {}

    def make(rank):
        def prog(ctx):
            results[rank] = yield from prog_factory(ctx)
            return None
        return prog

    w.run([make(r) for r in range(n)])
    return w, results


class TestBcast:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_all_ranks_receive_payload(self, n):
        def prog(ctx):
            got = yield ctx.bcast(0, 1000, "panel" if ctx.rank == 0 else None)
            return got

        _, results = _run(n, prog)
        assert all(results[r] == "panel" for r in range(n))

    def test_nonzero_root(self):
        def prog(ctx):
            return (yield ctx.bcast(2, 500, ctx.rank if ctx.rank == 2 else None))

        _, results = _run(4, prog)
        assert set(results.values()) == {2}

    def test_subgroup_only(self):
        group = [1, 3, 5]

        def prog(ctx):
            if ctx.rank in group:
                got = yield ctx.bcast(3, 100, "x" if ctx.rank == 3 else None,
                                      group=group)
                return got
            return "outside"

        _, results = _run(6, prog)
        assert results[1] == results[3] == results[5] == "x"
        assert results[0] == "outside"

    def test_successive_bcasts_keep_order(self):
        """Fixed collective tags are safe: the per-stream FIFO plus SPMD
        program order match the k-th send with the k-th recv."""

        def prog(ctx):
            first = yield ctx.bcast(0, 100, "a" if ctx.rank == 0 else None)
            second = yield ctx.bcast(0, 100, "b" if ctx.rank == 0 else None)
            return (first, second)

        _, results = _run(4, prog)
        assert all(v == ("a", "b") for v in results.values())


class TestReduce:
    @pytest.mark.parametrize("n", [2, 3, 6, 8])
    def test_sum_to_root(self, n):
        def prog(ctx):
            return (yield ctx.reduce(0, 100, ctx.rank + 1, op=operator.add))

        _, results = _run(n, prog)
        assert results[0] == n * (n + 1) // 2
        assert all(results[r] is None for r in range(1, n))

    def test_combine_order_deterministic(self):
        """op is applied in fixed tree order, so even a non-commutative
        combine gives the same answer on every run."""

        def prog(ctx):
            got = yield ctx.reduce(0, 100, (ctx.rank,),
                                   op=lambda a, b: a + b)
            return got

        _, first = _run(5, prog)
        _, second = _run(5, prog)
        assert first[0] == second[0]
        assert sorted(first[0]) == [0, 1, 2, 3, 4]


class TestAllreduce:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 8])
    def test_everyone_gets_the_sum(self, n):
        def prog(ctx):
            return (yield ctx.allreduce(100, ctx.rank + 1, op=operator.add))

        _, results = _run(n, prog)
        assert set(results.values()) == {n * (n + 1) // 2}


class TestGather:
    def test_root_gets_group_order(self):
        def prog(ctx):
            return (yield ctx.gather(1, 100, f"r{ctx.rank}"))

        _, results = _run(4, prog)
        assert results[1] == ["r0", "r1", "r2", "r3"]
        assert results[0] is None


class TestMulticast:
    def test_chain_delivers_payload(self):
        chain = [0, 1, 2, 3]

        def prog(ctx):
            return (yield ctx.multicast(chain, 1000,
                                        "seg" if ctx.rank == 0 else None,
                                        segments=4))

        w, results = _run(4, prog)
        assert all(results[r] == "seg" for r in range(4))
        # (n - 1) hops x segments messages.
        assert w.messages_sent == 3 * 4

    def test_pipelining_beats_whole_panel_chain(self):
        """Cutting the panel into segments overlaps the chain hops."""

        def makespan(segments):
            def prog(ctx):
                yield ctx.multicast([0, 1, 2, 3, 4, 5, 6, 7], 80_000,
                                    segments=segments)
                return None

            w, _ = _run(8, prog)
            return w.sim.now

        assert makespan(8) < makespan(1)

    def test_segment_validation(self):
        w = World(_machine(), 2)

        def prog(ctx):
            yield ctx.multicast([0, 1], 100, segments=0)

        with pytest.raises(ValueError):
            w.run([prog, prog])

    def test_group_membership_validated(self):
        w = World(_machine(), 3)

        def prog(ctx):
            yield ctx.multicast([0, 1], 100)

        with pytest.raises(ValueError):
            # rank 2 is not in the chain but still calls the collective
            w.run([prog, prog, prog])

    def test_duplicate_group_rejected(self):
        w = World(_machine(), 2)

        def prog(ctx):
            yield ctx.multicast([0, 1, 0], 100)

        with pytest.raises(ValueError):
            w.run([prog, prog])


class TestBarrier:
    def test_dissemination_barrier_synchronises(self):
        enter, leave = {}, {}

        def make(rank):
            def prog(ctx):
                yield ctx.compute_seconds(0.01 * (rank + 1))
                enter[rank] = ctx.world.sim.now
                yield ctx.barrier()
                leave[rank] = ctx.world.sim.now
            return prog

        m = _machine(barrier_algorithm="dissemination")
        w = World(m, 5)
        w.run([make(r) for r in range(5)])
        slowest = max(enter.values())
        assert all(t >= slowest for t in leave.values())
        assert w.messages_sent > 0  # real traffic, unlike the rendezvous

    def test_rendezvous_default_is_free(self):
        def prog(ctx):
            yield ctx.barrier()

        w, _ = _run(4, prog)
        assert w.messages_sent == 0


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        def prog(ctx):
            yield ctx.bcast(0, 5000, None)
            yield ctx.allreduce(2000, ctx.rank, op=operator.add)
            yield ctx.multicast(list(range(6)), 3000, segments=3)
            return None

        w1, _ = _run(6, prog)
        w2, _ = _run(6, prog)
        assert w1.sim.now == w2.sim.now
        assert w1.network.stats() == w2.network.stats()

    def test_tag_space_reserved(self):
        assert COLLECTIVE_TAG_BASE >= 1 << 20


class TestCollectiveFaults:
    def test_dropped_multicast_hop_recovered_by_arq(self):
        """A seeded drop on one chain hop retransmits and the payload
        still reaches the end of the chain."""
        faults = FaultPlan(
            seed=3, links=(LinkFaults(src=1, dst=2, drop_prob=0.6),)
        )
        m = _machine()
        w = World(m, 4, faults=faults, reliable=ReliableConfig())
        results = {}

        def make(rank):
            def prog(ctx):
                results[rank] = yield ctx.multicast(
                    [0, 1, 2, 3], 2000,
                    "panel" if ctx.rank == 0 else None, segments=4,
                )
            return prog

        from repro.sim.deadlock import WatchdogConfig

        outcome = w.run_outcome([make(r) for r in range(4)],
                                watchdog=WatchdogConfig(stall_time=5.0))
        assert outcome.status == "degraded"
        assert w.network.retransmits > 0
        assert all(results[r] == "panel" for r in range(4))

    def test_killed_reduce_leg_classified_deadlocked(self):
        """Without ARQ, a reduce whose child->parent message is always
        dropped wedges; the watchdog names the stuck collective."""
        faults = FaultPlan(links=(LinkFaults(src=1, dst=0, drop_prob=1.0),))
        w = World(_machine(), 2, faults=faults)

        def prog(ctx):
            yield ctx.reduce(0, 1000, ctx.rank, op=operator.add)

        from repro.sim.deadlock import WatchdogConfig

        outcome = w.run_outcome([prog, prog],
                                watchdog=WatchdogConfig(stall_time=0.5))
        assert outcome.status == "deadlocked"
        names = {b.name for b in outcome.report.blocked}
        assert any("reduce" in n for n in names)
        assert outcome.report.messages_dropped > 0
