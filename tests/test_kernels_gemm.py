"""SUMMA GEMM on the simulated cluster: config validation, message
accounting, pipelined-vs-sequential broadcast, topology routing, chaos
runs, and trace/critical-path integration."""

import pytest

from repro.kernels.gemm import SummaConfig, run_summa, summa_watchdog
from repro.model.machine import example1_machine
from repro.sim.faults import FaultPlan
from repro.sim.reliable import ReliableConfig
from repro.sim.topology import Mesh2D

pytestmark = pytest.mark.collectives


def _cfg(**kw):
    defaults = dict(grid=4, tile_m=16, tile_n=16, tile_k=16, panels=4,
                    segments=4, method="pipelined")
    defaults.update(kw)
    return SummaConfig(**defaults)


class TestConfig:
    def test_defaults_valid(self):
        cfg = SummaConfig()
        assert cfg.num_ranks == 16

    def test_grid_floor(self):
        with pytest.raises(ValueError):
            SummaConfig(grid=1)

    def test_method_validated(self):
        with pytest.raises(ValueError):
            SummaConfig(method="tree")

    def test_describe_mentions_segments_only_when_pipelined(self):
        assert "4seg" in _cfg().describe()
        assert "seg" not in _cfg(method="sequential").describe()


class TestMessageAccounting:
    def test_sequential_message_count(self):
        # Per panel: each of the g row chains and g column chains sends
        # g-1 whole-panel messages from its root.
        cfg = _cfg(method="sequential")
        res = run_summa(cfg, example1_machine())
        g, p = cfg.grid, cfg.panels
        assert res.messages_sent == p * 2 * g * (g - 1)

    def test_pipelined_message_count(self):
        cfg = _cfg(segments=4)
        res = run_summa(cfg, example1_machine())
        g, p, s = cfg.grid, cfg.panels, cfg.segments
        assert res.messages_sent == p * 2 * g * (g - 1) * s


class TestSchedules:
    def test_pipelined_beats_sequential(self):
        """The headline: a segmented chain multicast overlaps hops that
        the naive root-sends-to-all broadcast serialises."""
        m = example1_machine()
        seq = run_summa(_cfg(method="sequential", tile_m=64, tile_n=64,
                             tile_k=64), m)
        pipe = run_summa(_cfg(segments=4, tile_m=64, tile_n=64,
                              tile_k=64), m)
        assert pipe.completion_time < seq.completion_time

    def test_more_segments_not_worse_at_scale(self):
        m = example1_machine()
        one = run_summa(_cfg(segments=1, tile_m=64, tile_n=64, tile_k=64), m)
        four = run_summa(_cfg(segments=4, tile_m=64, tile_n=64, tile_k=64), m)
        assert four.completion_time < one.completion_time

    def test_deterministic(self):
        m = example1_machine()
        a = run_summa(_cfg(), m)
        b = run_summa(_cfg(), m)
        assert a.completion_time == b.completion_time
        assert a.network_stats == b.network_stats


class TestTopologyAndTrace:
    def test_mesh_routes_hops(self):
        cfg = _cfg()
        res = run_summa(cfg, example1_machine(),
                        topology=Mesh2D.square(cfg.num_ranks))
        assert res.network_stats["hops"] > 0

    def test_collective_legs_on_critical_path(self):
        """Acceptance gate: a traced SUMMA run's binding chain contains
        labelled multicast wire legs (and routed hop intervals)."""
        cfg = _cfg()
        res = run_summa(cfg, example1_machine(), trace=True,
                        topology=Mesh2D.square(cfg.num_ranks))
        cp = res.critical_path()
        assert cp is not None
        labels = [r.label for r in cp.chain]
        assert any("mcast" in (lbl or "") for lbl in labels)
        kinds = {r.kind for r in cp.chain}
        assert "hop" in kinds or "wire" in kinds

    def test_status_completed_when_fault_free(self):
        res = run_summa(_cfg(), example1_machine())
        assert res.status == "completed"
        assert res.outcome is None
        assert res.event_count > 0


class TestChaos:
    def test_dropped_panel_legs_degrade_not_wedge(self):
        cfg = _cfg(panels=2)
        res = run_summa(
            cfg, example1_machine(),
            faults=FaultPlan(seed=7, drop_prob=0.05),
            reliable=ReliableConfig(),
        )
        assert res.status == "degraded"
        assert res.network_stats["retransmits"] > 0

    def test_watchdog_scales_with_config(self):
        m = example1_machine()
        small = summa_watchdog(_cfg(), m)
        big = summa_watchdog(_cfg(tile_m=256, tile_n=256, tile_k=256), m)
        assert big.stall_time > small.stall_time > 0.0
