"""Fault injection: seeded fault plans, the legacy drop knob, and the
deterministic wedging of pipelines that lose messages."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import Machine, pentium_cluster
from repro.runtime.program import TiledProgram
from repro.sim.deadlock import diagnose
from repro.sim.faults import (
    Degradation,
    FaultPlan,
    LinkFaults,
    NodePause,
    Straggler,
)
from repro.sim.mpi import World


def _machine():
    return Machine(t_c=1.0, t_s=2.0, t_t=1e-3)


class TestFaultPlanValidation:
    def test_probabilities_bounded(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_prob=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_prob=2.0)
        with pytest.raises(ValueError):
            FaultPlan(jitter=-1.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Degradation(start=1.0, end=1.0, factor=2.0)
        with pytest.raises(ValueError):
            Degradation(start=0.0, end=1.0, factor=0.5)
        with pytest.raises(ValueError):
            Straggler(node=0, start=2.0, end=1.0, factor=2.0)
        with pytest.raises(ValueError):
            NodePause(node=0, start=1.0, end=0.5)

    def test_lists_frozen_to_tuples(self):
        plan = FaultPlan(links=[LinkFaults(src=0, drop_prob=0.1)])
        assert isinstance(plan.links, tuple)


class TestFaultPlanDeterminism:
    def test_same_seed_same_fates(self):
        a = FaultPlan(seed=42, drop_prob=0.3, duplicate_prob=0.2,
                      corrupt_prob=0.1, jitter=1e-4)
        b = FaultPlan(seed=42, drop_prob=0.3, duplicate_prob=0.2,
                      corrupt_prob=0.1, jitter=1e-4)
        for seq in range(1, 50):
            assert a.message_fate(0, 1, 0, seq) == b.message_fate(0, 1, 0, seq)

    def test_different_seed_different_stream(self):
        a = FaultPlan(seed=1, drop_prob=0.5)
        b = FaultPlan(seed=2, drop_prob=0.5)
        fates_a = [a.message_fate(0, 1, 0, s).dropped for s in range(1, 64)]
        fates_b = [b.message_fate(0, 1, 0, s).dropped for s in range(1, 64)]
        assert fates_a != fates_b

    def test_fate_independent_of_call_order(self):
        plan = FaultPlan(seed=3, drop_prob=0.5)
        first = plan.message_fate(0, 1, 0, 7)
        # Interleave unrelated draws; the fate must not move.
        plan.message_fate(1, 0, 2, 3)
        plan.message_fate(0, 1, 0, 8, attempt=4)
        assert plan.message_fate(0, 1, 0, 7) == first

    def test_attempts_draw_fresh_fates(self):
        plan = FaultPlan(seed=5, drop_prob=0.5)
        fates = {
            plan.message_fate(0, 1, 0, 1, attempt=a).dropped
            for a in range(16)
        }
        assert fates == {True, False}

    def test_drop_rate_roughly_matches_probability(self):
        plan = FaultPlan(seed=9, drop_prob=0.25)
        n = 2000
        drops = sum(
            plan.message_fate(0, 1, 0, s).dropped for s in range(1, n + 1)
        )
        assert 0.20 < drops / n < 0.30

    def test_roundtrip_to_dict(self):
        plan = FaultPlan(
            seed=7, drop_prob=0.1, jitter=1e-5,
            links=(LinkFaults(src=1, dst=None, drop_prob=0.5),),
            degradations=(Degradation(0.0, 1.0, 3.0),),
            stragglers=(Straggler(2, 0.0, 1.0, 2.0),),
            pauses=(NodePause(0, 0.5, 0.6),),
            drop_every_nth=4,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.message_fate(1, 0, 0, 3) == plan.message_fate(1, 0, 0, 3)


class TestLinkOverrides:
    def test_override_replaces_defaults(self):
        plan = FaultPlan(
            seed=0, drop_prob=1.0,
            links=(LinkFaults(src=0, dst=1),),  # quiet link
        )
        assert not plan.message_fate(0, 1, 0, 1).dropped
        assert plan.message_fate(1, 0, 0, 1).dropped

    def test_wildcard_endpoints(self):
        link = LinkFaults(src=None, dst=2, drop_prob=1.0)
        assert link.matches(0, 2) and link.matches(1, 2)
        assert not link.matches(0, 1)


class TestTimeDependentFaults:
    def test_wire_factor_windows(self):
        plan = FaultPlan(degradations=(
            Degradation(1.0, 2.0, 4.0),
            Degradation(1.5, 3.0, 2.0, src=0, dst=1),
        ))
        assert plan.wire_factor(0, 1, 0.5) == 1.0
        assert plan.wire_factor(0, 1, 1.0) == 4.0
        assert plan.wire_factor(0, 1, 1.75) == 8.0  # both windows stack
        assert plan.wire_factor(1, 0, 1.75) == 4.0  # link filter
        assert plan.wire_factor(0, 1, 2.5) == 2.0

    def test_compute_factor_and_pause(self):
        plan = FaultPlan(
            stragglers=(Straggler(1, 0.0, 10.0, 3.0),),
            pauses=(NodePause(0, 5.0, 7.0),),
        )
        assert plan.compute_factor(1, 2.0) == 3.0
        assert plan.compute_factor(0, 2.0) == 1.0
        assert plan.pause_delay(0, 6.0) == 1.0
        assert plan.pause_delay(0, 8.0) == 0.0
        assert plan.has_node_faults

    def test_straggler_stretches_run(self):
        def prog(ctx):
            yield ctx.compute_seconds(1.0)

        clean = World(_machine(), 1)
        base = clean.run([prog])
        slow = World(_machine(), 1, faults=FaultPlan(
            stragglers=(Straggler(0, 0.0, 100.0, 2.5),)
        ))
        assert slow.run([prog]) == pytest.approx(2.5 * base)

    def test_pause_delays_compute(self):
        def prog(ctx):
            yield ctx.compute_seconds(0.5)

        paused = World(_machine(), 1, faults=FaultPlan(
            pauses=(NodePause(0, 0.0, 3.0),)
        ))
        assert paused.run([prog]) == pytest.approx(3.5)

    def test_jitter_delays_arrival(self):
        def sender(ctx):
            yield ctx.isend(1, 1000.0)

        def receiver(ctx):
            yield ctx.recv(0, 1000.0)

        clean = World(_machine(), 2)
        base = clean.run([sender, receiver])
        jittered = World(_machine(), 2, faults=FaultPlan(seed=4, jitter=0.5))
        assert jittered.run([sender, receiver]) > base


class TestLegacyDropKnob:
    def test_validation(self):
        with pytest.raises(ValueError):
            World(_machine(), 2, drop_every_nth=-1)

    def test_constructor_warns_deprecated(self):
        with pytest.deprecated_call():
            World(_machine(), 2, drop_every_nth=3)

    def test_conflicts_with_faults(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                World(_machine(), 2, drop_every_nth=2, faults=FaultPlan())

    def test_shim_delegates_to_fault_plan(self):
        with pytest.warns(DeprecationWarning):
            w = World(_machine(), 2, drop_every_nth=3)
        assert w.faults is not None
        assert w.faults.drop_every_nth == 3

    def test_no_drops_by_default(self):
        w = World(_machine(), 2)

        def sender(ctx):
            yield ctx.isend(1, 10)

        def receiver(ctx):
            yield ctx.recv(0, 10)

        w.run([sender, receiver])
        assert w.messages_dropped == 0

    def test_dropped_message_never_arrives(self):
        with pytest.warns(DeprecationWarning):
            w = World(_machine(), 2, drop_every_nth=1)
        got = []

        def sender(ctx):
            yield ctx.send(1, 10)  # blocking send still completes

        def receiver(ctx):
            got.append((yield ctx.recv(0, 10)))

        with pytest.raises(RuntimeError, match="deadlock"):
            w.run([sender, receiver])
        assert w.messages_dropped == 1
        assert not got

    def test_only_nth_dropped(self):
        with pytest.warns(DeprecationWarning):
            w = World(_machine(), 2, drop_every_nth=2)
        got = []

        def sender(ctx):
            yield ctx.isend(1, 10, payload="a")  # seq 1: delivered
            yield ctx.isend(1, 10, payload="b")  # seq 2: dropped
        def receiver(ctx):
            got.append((yield ctx.recv(0, 10)))

        w.run([sender, receiver])
        assert got == ["a"]
        assert w.messages_dropped == 1

    def test_shim_equivalent_to_fault_plan(self):
        """The shim and an explicit FaultPlan drop exactly the same
        messages at the same times.  (A drop leaves a permanent gap in
        the non-overtaking stream, so only the first message — before
        the first dropped seq — is ever deliverable.)"""
        def sender(ctx):
            for i in range(6):
                yield ctx.isend(1, 10, payload=i)

        def receiver(ctx):
            return (yield ctx.recv(0, 10))

        with pytest.warns(DeprecationWarning):
            legacy = World(_machine(), 2, drop_every_nth=2)
        explicit = World(_machine(), 2, faults=FaultPlan(drop_every_nth=2))
        t_legacy = legacy.run([sender, receiver])
        t_explicit = explicit.run([sender, receiver])
        assert t_legacy == t_explicit
        assert legacy.messages_dropped == explicit.messages_dropped == 3


class TestPipelineWedge:
    def test_dropped_message_wedges_tiled_run_with_diagnosis(self):
        """Losing one ghost message deterministically deadlocks the tile
        pipeline; the diagnosis names blocked ranks and the unmatched
        receive."""
        workload = StencilWorkload(
            "fault", IterationSpace.from_extents([8, 8, 32]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        prog = TiledProgram(workload, 8, pentium_cluster(), blocking=False)
        world = World(pentium_cluster(), prog.num_ranks,
                      faults=FaultPlan(drop_every_nth=5))
        with pytest.raises(RuntimeError, match="deadlock"):
            world.run(prog.programs())
        report = diagnose(world)
        assert report.is_deadlocked
        assert report.blocked
        assert report.unmatched_receives
        assert report.messages_dropped == world.messages_dropped > 0
        assert report.sim_time > 0
        text = report.describe()
        assert "blocked" in text and "never matched" in text
        assert "undelivered" in text or not report.undelivered_messages
        assert "dropped by fault injection" in text

    def test_healthy_run_diagnoses_clean(self):
        workload = StencilWorkload(
            "ok", IterationSpace.from_extents([8, 8, 32]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        prog = TiledProgram(workload, 8, pentium_cluster(), blocking=False)
        world = World(pentium_cluster(), prog.num_ranks)
        world.run(prog.programs())
        report = diagnose(world)
        assert not report.is_deadlocked
        assert "no deadlock" in report.describe()

    def test_describe_labels_match_field_semantics(self):
        """The describe() text must call undelivered messages what they
        are (arrived but never received), not 'delivered'."""
        w = World(_machine(), 2)

        def sender(ctx):
            yield ctx.isend(1, 10, tag=7)

        def receiver(ctx):
            yield ctx.recv(0, 10, tag=9)  # wrong tag: never matches

        with pytest.raises(RuntimeError, match="deadlock"):
            w.run([sender, receiver])
        report = diagnose(w)
        assert report.undelivered_messages == ((1, 0, 7),)
        text = report.describe()
        assert "arrived, never received" in text
