"""Fault injection: dropped messages must wedge pipelines detectably."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload
from repro.model.machine import Machine, pentium_cluster
from repro.runtime.program import TiledProgram
from repro.sim.deadlock import diagnose
from repro.sim.mpi import World


def _machine():
    return Machine(t_c=1.0, t_s=2.0, t_t=1e-3)


class TestDropKnob:
    def test_validation(self):
        with pytest.raises(ValueError):
            World(_machine(), 2, drop_every_nth=-1)

    def test_no_drops_by_default(self):
        w = World(_machine(), 2)

        def sender(ctx):
            yield ctx.isend(1, 10)

        def receiver(ctx):
            yield ctx.recv(0, 10)

        w.run([sender, receiver])
        assert w.messages_dropped == 0

    def test_dropped_message_never_arrives(self):
        w = World(_machine(), 2, drop_every_nth=1)
        got = []

        def sender(ctx):
            yield ctx.send(1, 10)  # blocking send still completes

        def receiver(ctx):
            got.append((yield ctx.recv(0, 10)))

        with pytest.raises(RuntimeError, match="deadlock"):
            w.run([sender, receiver])
        assert w.messages_dropped == 1
        assert not got

    def test_only_nth_dropped(self):
        w = World(_machine(), 2, drop_every_nth=2)
        got = []

        def sender(ctx):
            yield ctx.isend(1, 10, payload="a")  # seq 1: delivered
            yield ctx.isend(1, 10, payload="b")  # seq 2: dropped

        def receiver(ctx):
            got.append((yield ctx.recv(0, 10)))

        w.run([sender, receiver])
        assert got == ["a"]
        assert w.messages_dropped == 1


class TestPipelineWedge:
    def test_dropped_message_wedges_tiled_run_with_diagnosis(self):
        """Losing one ghost message deterministically deadlocks the tile
        pipeline; the diagnosis names blocked ranks and the unmatched
        receive."""
        workload = StencilWorkload(
            "fault", IterationSpace.from_extents([8, 8, 32]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        prog = TiledProgram(workload, 8, pentium_cluster(), blocking=False)
        world = World(pentium_cluster(), prog.num_ranks, drop_every_nth=5)
        with pytest.raises(RuntimeError, match="deadlock"):
            world.run(prog.programs())
        report = diagnose(world)
        assert report.is_deadlocked
        assert report.blocked
        assert report.unmatched_receives
        text = report.describe()
        assert "blocked" in text and "never matched" in text

    def test_healthy_run_diagnoses_clean(self):
        workload = StencilWorkload(
            "ok", IterationSpace.from_extents([8, 8, 32]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        prog = TiledProgram(workload, 8, pentium_cluster(), blocking=False)
        world = World(pentium_cluster(), prog.num_ranks)
        world.run(prog.programs())
        report = diagnose(world)
        assert not report.is_deadlocked
        assert "no deadlock" in report.describe()
