"""Buffer budgeting (paper Fig. 6's extra space for overlapping)."""

import pytest

from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d, sum_kernel_2d
from repro.kernels.workloads import StencilWorkload, paper_experiment_i
from repro.model.machine import pentium_cluster
from repro.runtime.buffers import buffer_requirements


def _w():
    return StencilWorkload(
        "buf", IterationSpace.from_extents([8, 8, 64]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


class TestBufferRequirements:
    def test_data_bytes(self):
        r = buffer_requirements(_w(), 8, pentium_cluster(), blocking=True)
        # Owned column: 4 × 4 × 64 floats of 4 bytes.
        assert r.data_bytes == 4 * 4 * 64 * 4

    def test_halo_bytes(self):
        r = buffer_requirements(_w(), 8, pentium_cluster(), blocking=True)
        assert r.halo_bytes == (5 * 5 * 65 - 4 * 4 * 64) * 4

    def test_blocking_surfaces(self):
        r = buffer_requirements(_w(), 8, pentium_cluster(), blocking=True)
        # Two directions, face = 1 × 4 × 8 elements each way.
        assert r.send_surface_bytes == 2 * 32 * 4
        assert r.recv_surface_bytes == 2 * 32 * 4

    def test_pipelined_doubles_surfaces(self):
        b = buffer_requirements(_w(), 8, pentium_cluster(), blocking=True)
        p = buffer_requirements(_w(), 8, pentium_cluster(), blocking=False)
        assert p.send_surface_bytes == 2 * b.send_surface_bytes
        assert p.recv_surface_bytes == 2 * b.recv_surface_bytes
        assert p.data_bytes == b.data_bytes

    def test_surfaces_scale_with_v(self):
        r1 = buffer_requirements(_w(), 8, pentium_cluster(), blocking=False)
        r2 = buffer_requirements(_w(), 16, pentium_cluster(), blocking=False)
        assert r2.surface_bytes == 2 * r1.surface_bytes

    def test_totals_and_overhead(self):
        r = buffer_requirements(_w(), 8, pentium_cluster(), blocking=False)
        assert r.total_bytes == r.data_bytes + r.halo_bytes + r.surface_bytes
        assert 0 < r.overlap_overhead < 1

    def test_describe(self):
        r = buffer_requirements(_w(), 8, pentium_cluster(), blocking=False)
        assert "pipelined" in r.describe()
        assert "buf" in r.describe()

    def test_paper_scale_fits_128mb_nodes(self):
        """The paper's nodes had 128 MB; experiment i at the optimal tile
        height must use only a small fraction of that."""
        r = buffer_requirements(
            paper_experiment_i(), 444, pentium_cluster(), blocking=False
        )
        assert r.total_bytes < 8 * 1024 * 1024

    def test_2d_single_direction(self):
        w = StencilWorkload(
            "buf2", IterationSpace.from_extents([64, 16]),
            sum_kernel_2d(), (1, 2), 0,
        )
        r = buffer_requirements(w, 8, pentium_cluster(), blocking=True)
        # One communicating direction (dim 1); face = 8 × 1 elements.
        assert r.send_surface_bytes == 8 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            buffer_requirements(_w(), 0, pentium_cluster(), blocking=True)
