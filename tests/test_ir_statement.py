"""Tests for array accesses and statements."""

import pytest

from repro.ir.statement import ArrayAccess, Statement, stencil_statement


class TestArrayAccess:
    def test_at(self):
        a = ArrayAccess("A", (-1, 2))
        assert a.at((5, 5)) == (4, 7)

    def test_at_dimension_mismatch(self):
        with pytest.raises(ValueError):
            ArrayAccess("A", (0,)).at((1, 2))

    def test_name_validation(self):
        with pytest.raises(ValueError):
            ArrayAccess("", (0,))

    def test_str(self):
        assert str(ArrayAccess("A", (-1, 0, 2))) == "A(i1-1, i2, i3+2)"


class TestStatement:
    def test_dependences_example1(self):
        # A(i1,i2) = A(i1-1,i2-1) + A(i1-1,i2) + A(i1,i2-1)
        s = stencil_statement("A", [(-1, -1), (-1, 0), (0, -1)])
        assert set(s.dependence_vectors()) == {(1, 1), (1, 0), (0, 1)}

    def test_dependences_only_same_array(self):
        w = ArrayAccess("A", (0, 0))
        s = Statement(w, [ArrayAccess("B", (-1, 0)), ArrayAccess("A", (0, -1))])
        assert s.dependence_vectors() == ((0, 1),)

    def test_zero_vector_dropped(self):
        w = ArrayAccess("A", (0,))
        s = Statement(w, [ArrayAccess("A", (0,))])
        assert s.dependence_vectors() == ()

    def test_duplicates_dropped(self):
        s = stencil_statement("A", [(-1, 0), (-1, 0)])
        assert s.dependence_vectors() == ((1, 0),)

    def test_dimension_mismatch(self):
        w = ArrayAccess("A", (0, 0))
        with pytest.raises(ValueError):
            Statement(w, [ArrayAccess("A", (0,))])

    def test_type_checks(self):
        with pytest.raises(TypeError):
            Statement("x", [])
        with pytest.raises(TypeError):
            Statement(ArrayAccess("A", (0,)), ["bad"])

    def test_stencil_statement_requires_offsets(self):
        with pytest.raises(ValueError):
            stencil_statement("A", [])

    def test_str(self):
        s = stencil_statement("A", [(-1,)])
        assert str(s) == "A(i1) = E(A(i1-1))"
