"""Tests for the V-sweep harness on reduced-size workloads."""

import pytest

from repro.experiments.figures import (
    SweepPoint,
    analytic_step,
    analytic_times,
    default_heights,
    sweep,
)
from repro.ir.loopnest import IterationSpace
from repro.kernels.stencil import sqrt_kernel_3d
from repro.kernels.workloads import StencilWorkload, paper_experiment_i
from repro.model.machine import pentium_cluster


def _small():
    return StencilWorkload(
        "small", IterationSpace.from_extents([8, 8, 1024]),
        sqrt_kernel_3d(), (2, 2, 1), 2,
    )


class TestDefaultHeights:
    def test_paper_range(self):
        w = paper_experiment_i()
        hs = default_heights(w, max_points=10)
        assert hs[0] == 4
        assert hs[-1] == 16384 // 4
        assert all(a < b for a, b in zip(hs, hs[1:]))
        assert len(hs) <= 11

    def test_small_extent(self):
        w = StencilWorkload(
            "tiny", IterationSpace.from_extents([4, 4, 8]),
            sqrt_kernel_3d(), (2, 2, 1), 2,
        )
        hs = default_heights(w)
        # extent/4 = 2 < minimum 4: a single clipped height is returned.
        assert hs == [4]

    def test_validation(self):
        with pytest.raises(ValueError):
            default_heights(_small(), max_points=1)

    def test_grid_invariants_across_shapes(self):
        """Regression: float-ratio accumulation could round a midpoint
        onto (or past) hi, leaving a duplicate or out-of-order final
        entry.  For every shape the grid must be strictly increasing and
        end exactly at extent // 4."""
        for extent in (64, 96, 1000, 4096, 12288, 16384, 16400):
            for max_points in (2, 3, 5, 8, 12, 15):
                w = StencilWorkload(
                    "g", IterationSpace.from_extents([4, 4, extent]),
                    sqrt_kernel_3d(), (2, 2, 1), 2,
                )
                hs = default_heights(w, max_points=max_points)
                assert all(a < b for a, b in zip(hs, hs[1:])), (extent, max_points)
                assert hs[0] == 4
                assert hs[-1] == extent // 4, (extent, max_points)


class TestAnalytic:
    def test_step_costs_positive(self):
        sc = analytic_step(_small(), pentium_cluster(), 64)
        assert sc.a2_compute > 0
        assert sc.b4_transmit > 0

    def test_times_positive_and_ordered(self):
        t_non, t_ovl = analytic_times(_small(), pentium_cluster(), 64)
        assert 0 < t_ovl
        assert 0 < t_non


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep(_small(), pentium_cluster(), heights=[8, 32, 64, 128, 256])

    def test_points_structure(self, result):
        assert len(result.points) == 5
        for p in result.points:
            assert isinstance(p, SweepPoint)
            assert p.t_overlap_sim > 0
            assert p.grain == 16 * p.v

    def test_overlap_below_nonoverlap_everywhere(self, result):
        for p in result.points:
            assert p.t_overlap_sim < p.t_nonoverlap_sim
            assert 0 < p.improvement_sim < 1

    def test_u_shape(self, result):
        """Interior optimum: the ends of the sweep are worse than the best."""
        times = [p.t_overlap_sim for p in result.points]
        best = min(times)
        assert times[0] > best
        assert times[-1] > best

    def test_best_and_improvement(self, result):
        b_ovl = result.best(overlap=True)
        b_non = result.best(overlap=False)
        assert b_ovl.t_overlap_sim == min(p.t_overlap_sim for p in result.points)
        assert b_non.t_nonoverlap_sim == min(
            p.t_nonoverlap_sim for p in result.points
        )
        assert 0 < result.optimal_improvement_sim < 1

    def test_model_curves_bound_sim(self, result):
        """The paper's eq.-(3)/(4) models charge every processor the
        interior-processor step, so on this 2×2 grid (corner ranks only)
        they are conservative upper bounds — within a factor of 2."""
        for p in result.points:
            assert p.t_nonoverlap_sim <= p.t_nonoverlap_model * 1.05
            assert p.t_nonoverlap_sim >= p.t_nonoverlap_model * 0.4
            assert p.t_overlap_sim <= p.t_overlap_model * 1.05
            assert p.t_overlap_sim >= p.t_overlap_model * 0.4

    def test_model_best(self, result):
        b = result.best(overlap=True, simulated=False)
        assert b.t_overlap_model == min(p.t_overlap_model for p in result.points)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            sweep(_small(), pentium_cluster(), heights=[])


class TestRenderers:
    def test_render_sweep(self):
        from repro.experiments.report import render_sweep, render_sweep_summary

        r = sweep(_small(), pentium_cluster(), heights=[32, 128])
        table = render_sweep(r)
        assert "overlap sim" in table
        assert "32" in table
        summary = render_sweep_summary(r)
        assert "improvement at optima" in summary
